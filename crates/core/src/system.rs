//! The coupled Vlasov–Maxwell system.
//!
//! One [`VlasovMaxwell`] owns the phase-space discretization, the Maxwell
//! solver, and the species set, and evaluates the full coupled RHS: the
//! kinetic update for each species, the field update, and the current
//! (plus, with cleaning, charge) coupling — the complete per-stage work of
//! the paper's Table I measurement.

use crate::lbo::LboOp;
use crate::moments::{accumulate_current, MomentScratch};
use crate::species::Species;
use crate::vlasov::{VlasovOp, VlasovWorkspace};
use dg_grid::{DgField, PhaseGrid};
use dg_kernels::{KernelDispatch, PhaseKernels};
use dg_maxwell::MaxwellDg;
use std::sync::Arc;

pub use crate::vlasov::FluxKind;

/// The dynamical state: one distribution function per species plus the EM
/// field. RK stages operate on whole states.
#[derive(Clone, Debug)]
pub struct SystemState {
    pub species_f: Vec<DgField>,
    pub em: DgField,
}

impl SystemState {
    pub fn axpy(&mut self, a: f64, rhs: &SystemState) {
        for (f, r) in self.species_f.iter_mut().zip(&rhs.species_f) {
            f.axpy(a, r);
        }
        self.em.axpy(a, &rhs.em);
    }

    pub fn lincomb(&mut self, a: f64, b: f64, other: &SystemState) {
        for (f, o) in self.species_f.iter_mut().zip(&other.species_f) {
            f.lincomb(a, b, o);
        }
        self.em.lincomb(a, b, &other.em);
    }

    pub fn fill(&mut self, v: f64) {
        for f in &mut self.species_f {
            f.fill(v);
        }
        self.em.fill(v);
    }

    pub fn copy_from(&mut self, other: &SystemState) {
        for (f, o) in self.species_f.iter_mut().zip(&other.species_f) {
            f.copy_from(o);
        }
        self.em.copy_from(&other.em);
    }
}

/// The coupled system (species parameters + operators; the dynamical data
/// lives in [`SystemState`] values owned by the stepper/App).
pub struct VlasovMaxwell {
    pub kernels: Arc<PhaseKernels>,
    pub grid: PhaseGrid,
    pub vlasov: VlasovOp,
    pub maxwell: MaxwellDg,
    pub species: Vec<Species>,
    /// Optional Dougherty-LBO collisions, per species (paper footnote 7).
    collisions: Vec<Option<LboOp>>,
    /// Evolve the EM field and couple currents (off = external fields only).
    evolve_field: bool,
    /// Feed `χ_e ρ/ε₀` to the cleaning potential φ.
    track_charge: bool,
    /// Uniform neutralizing background charge density (subtracted from the
    /// cleaning source; e.g. immobile ions under a mobile electron species).
    background_charge: f64,
    scratch_j: DgField,
    scratch_rho: DgField,
    /// Moment-reduction scratch, persistent so steady-state RHS evaluation
    /// allocates nothing.
    scratch_mom: MomentScratch,
}

impl VlasovMaxwell {
    pub fn new(
        kernels: Arc<PhaseKernels>,
        grid: PhaseGrid,
        maxwell: MaxwellDg,
        species: Vec<Species>,
        flux: FluxKind,
    ) -> Self {
        let nconf = grid.conf.len();
        let nc = kernels.nc();
        let collisions = species.iter().map(|_| None).collect();
        let vlasov = VlasovOp::new(Arc::clone(&kernels), grid.clone(), flux);
        VlasovMaxwell {
            kernels,
            grid,
            vlasov,
            maxwell,
            species,
            collisions,
            evolve_field: true,
            track_charge: true,
            background_charge: 0.0,
            scratch_j: DgField::zeros(nconf, 3 * nc),
            scratch_rho: DgField::zeros(nconf, nc),
            scratch_mom: MomentScratch::default(),
        }
    }

    /// Force the volume-kernel dispatch path (rebuilds the Vlasov operator;
    /// the default from construction is [`KernelDispatch::Auto`]). Benches
    /// and equivalence tests use this to pin a path.
    ///
    /// # Panics
    ///
    /// When forcing [`KernelDispatch::Generated`] for a configuration with
    /// no committed kernel (see `dg_kernels::dispatch`).
    pub fn set_kernel_dispatch(&mut self, dispatch: KernelDispatch) {
        self.vlasov = VlasovOp::with_dispatch(
            Arc::clone(&self.kernels),
            self.grid.clone(),
            self.vlasov.flux,
            dispatch,
        );
    }

    /// Install per-species collision operators (one slot per species, in
    /// species order; `None` = collisionless).
    ///
    /// # Panics
    ///
    /// When `collisions.len()` differs from the species count.
    pub fn set_collisions(&mut self, collisions: Vec<Option<LboOp>>) {
        assert_eq!(
            collisions.len(),
            self.species.len(),
            "one collision slot per species"
        );
        self.collisions = collisions;
    }

    /// Per-species collision operators (species order).
    pub fn collisions(&self) -> &[Option<LboOp>] {
        &self.collisions
    }

    /// Evolve the EM field and couple currents (off = external fields only).
    pub fn set_evolve_field(&mut self, evolve: bool) {
        self.evolve_field = evolve;
    }

    /// Whether the EM field is evolved and currents are coupled.
    pub fn evolve_field(&self) -> bool {
        self.evolve_field
    }

    /// Feed `χ_e ρ/ε₀` to the divergence-cleaning potential φ.
    pub fn set_track_charge(&mut self, track: bool) {
        self.track_charge = track;
    }

    /// Whether the charge density feeds the cleaning potential.
    pub fn track_charge(&self) -> bool {
        self.track_charge
    }

    /// Uniform neutralizing background charge density (subtracted from the
    /// cleaning source; e.g. immobile ions under a mobile electron species).
    pub fn set_background_charge(&mut self, rho: f64) {
        self.background_charge = rho;
    }

    /// The neutralizing background charge density.
    pub fn background_charge(&self) -> f64 {
        self.background_charge
    }

    /// A zeroed state with this system's shape.
    pub fn new_state(&self) -> SystemState {
        SystemState {
            species_f: self
                .species
                .iter()
                .map(|s| DgField::zeros(s.f.ncells(), s.f.ncoeff()))
                .collect(),
            em: self.maxwell.new_field(),
        }
    }

    /// Build the initial state from the species' projected distributions and
    /// a given initial EM field.
    pub fn initial_state(&self, em: DgField) -> SystemState {
        SystemState {
            species_f: self.species.iter().map(|s| s.f.clone()).collect(),
            em,
        }
    }

    /// Evaluate the full coupled RHS at `state` into `out` (zeroed here).
    pub fn rhs(&mut self, state: &SystemState, out: &mut SystemState, ws: &mut VlasovWorkspace) {
        out.fill(0.0);
        let nconf = self.grid.conf.len();
        // Kinetic updates.
        for (s, sp) in self.species.iter().enumerate() {
            self.vlasov.accumulate_rhs(
                sp.qm(),
                &state.species_f[s],
                &state.em,
                &mut out.species_f[s],
                ws,
            );
            if let Some(lbo) = self.collisions[s].as_mut() {
                lbo.accumulate_rhs(&state.species_f[s], &mut out.species_f[s]);
            }
        }
        // Field update + coupling.
        if self.evolve_field {
            self.maxwell.rhs(&state.em, &mut out.em);
            self.scratch_j.fill(0.0);
            self.scratch_rho.fill(0.0);
            for (s, sp) in self.species.iter().enumerate() {
                accumulate_current(
                    &self.kernels,
                    &self.grid,
                    sp.charge,
                    &state.species_f[s],
                    &mut self.scratch_j,
                    if self.track_charge {
                        Some(&mut self.scratch_rho)
                    } else {
                        None
                    },
                    0..nconf,
                    &mut self.scratch_mom,
                );
            }
            if self.track_charge && self.background_charge != 0.0 {
                let c0 = dg_basis::expand::const_coeff(&self.kernels.conf_basis);
                for c in 0..nconf {
                    self.scratch_rho.cell_mut(c)[0] -= self.background_charge * c0;
                }
            }
            self.maxwell.add_sources(
                &self.scratch_j,
                if self.track_charge {
                    Some(&self.scratch_rho)
                } else {
                    None
                },
                &mut out.em,
            );
        }
    }

    /// Particle kinetic energy summed over species.
    pub fn particle_energy(&self, state: &SystemState) -> f64 {
        self.species
            .iter()
            .enumerate()
            .map(|(s, sp)| {
                crate::moments::kinetic_energy(
                    &self.kernels,
                    &self.grid,
                    sp.mass,
                    &state.species_f[s],
                )
            })
            .sum()
    }

    /// EM field energy.
    pub fn field_energy(&self, state: &SystemState) -> f64 {
        dg_maxwell::energy::em_energy(&self.maxwell, &state.em)
    }

    /// Total particle count, per species.
    pub fn particle_numbers(&self, state: &SystemState) -> Vec<f64> {
        let vol: f64 = self
            .grid
            .conf
            .dx()
            .iter()
            .chain(self.grid.vel.dx())
            .product();
        let w = vol
            * (2.0f64)
                .powi(-(self.kernels.phase_basis.ndim() as i32))
                .sqrt();
        state
            .species_f
            .iter()
            .map(|f| (0..f.ncells()).map(|c| f.cell(c)[0]).sum::<f64>() * w)
            .collect()
    }

    /// Current-density field of the last RHS evaluation (diagnostics: the
    /// `J_h · E_h` energy-exchange analysis of the paper).
    pub fn last_current(&self) -> &DgField {
        &self.scratch_j
    }
}
