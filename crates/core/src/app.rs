//! The App system: declarative simulation assembly (paper Fig. 4).
//!
//! Gkeyll drives its C++ kernels from LuaJIT "App" scripts: the user
//! declares a configuration grid, species with initial conditions, and
//! field parameters; the framework wires kernels, moments, field solver and
//! time stepper together. [`AppBuilder`] is the Rust analogue — everything
//! a paper experiment needs in one fluent declaration:
//!
//! ```
//! use dg_core::app::{AppBuilder, FieldSpec, SpeciesSpec};
//! use dg_basis::BasisKind;
//!
//! let mut app = AppBuilder::new()
//!     .conf_grid(&[0.0], &[6.283], &[8])
//!     .poly_order(1)
//!     .basis(BasisKind::Serendipity)
//!     .species(SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[8]))
//!     .field(FieldSpec::new(1.0))
//!     .build()
//!     .unwrap();
//! let dt = app.step().unwrap();
//! assert!(dt > 0.0 && app.time() > 0.0);
//! ```

use crate::cfl::suggest_dt;
use crate::lbo::LboOp;
use crate::species::Species;
use crate::ssprk::SspRk3;
use crate::system::{FluxKind, SystemState, VlasovMaxwell};
use dg_basis::{project, Basis, BasisKind};
use dg_grid::{Bc, CartGrid, DgField, PhaseGrid};
use dg_kernels::{kernels_for, KernelDispatch, PhaseLayout};
use dg_maxwell::flux::PhmParams;
use dg_maxwell::{MaxwellDg, MaxwellFlux};
use dg_poly::quad::GaussRule;
use std::sync::Arc;

type DistFn = Box<dyn FnMut(&[f64], &[f64]) -> f64>;
type FieldFn = Box<dyn FnMut(&[f64]) -> [f64; 6]>;

/// Declaration of one kinetic species.
pub struct SpeciesSpec {
    name: String,
    charge: f64,
    mass: f64,
    vlower: Vec<f64>,
    vupper: Vec<f64>,
    vcells: Vec<usize>,
    init: Option<DistFn>,
    collision_nu: Option<f64>,
}

impl SpeciesSpec {
    pub fn new(
        name: &str,
        charge: f64,
        mass: f64,
        vlower: &[f64],
        vupper: &[f64],
        vcells: &[usize],
    ) -> Self {
        SpeciesSpec {
            name: name.to_string(),
            charge,
            mass,
            vlower: vlower.to_vec(),
            vupper: vupper.to_vec(),
            vcells: vcells.to_vec(),
            init: None,
            collision_nu: None,
        }
    }

    /// Initial distribution `f₀(x, v)`.
    pub fn initial(mut self, f: impl FnMut(&[f64], &[f64]) -> f64 + 'static) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Enable Dougherty-LBO self collisions with frequency ν.
    pub fn collisions(mut self, nu: f64) -> Self {
        self.collision_nu = Some(nu);
        self
    }
}

/// Declaration of the electromagnetic field.
pub struct FieldSpec {
    c: f64,
    chi_e: f64,
    chi_m: f64,
    epsilon0: f64,
    flux: MaxwellFlux,
    init: Option<FieldFn>,
    poisson_init: bool,
    evolve: bool,
}

impl FieldSpec {
    pub fn new(c: f64) -> Self {
        FieldSpec {
            c,
            chi_e: 0.0,
            chi_m: 0.0,
            epsilon0: 1.0,
            flux: MaxwellFlux::Central,
            init: None,
            poisson_init: false,
            evolve: true,
        }
    }

    /// Initial `[Ex, Ey, Ez, Bx, By, Bz](x)`.
    pub fn with_ic(mut self, f: impl FnMut(&[f64]) -> [f64; 6] + 'static) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Solve Gauss's law for the initial `E_x` in 1D configurations (the
    /// classic electrostatic start of Landau-damping / two-stream setups).
    pub fn with_poisson_init(mut self) -> Self {
        self.poisson_init = true;
        self
    }

    /// Divergence-cleaning speed factors (0 disables).
    pub fn cleaning(mut self, chi_e: f64, chi_m: f64) -> Self {
        self.chi_e = chi_e;
        self.chi_m = chi_m;
        self
    }

    pub fn epsilon0(mut self, e: f64) -> Self {
        self.epsilon0 = e;
        self
    }

    pub fn flux(mut self, flux: MaxwellFlux) -> Self {
        self.flux = flux;
        self
    }

    /// Freeze the field (external-field-only kinetics).
    pub fn frozen(mut self) -> Self {
        self.evolve = false;
        self
    }
}

/// The simulation builder.
pub struct AppBuilder {
    conf: Option<(Vec<f64>, Vec<f64>, Vec<usize>)>,
    conf_bc: Option<Vec<Bc>>,
    poly_order: usize,
    kind: BasisKind,
    cfl: f64,
    flux: FluxKind,
    dispatch: KernelDispatch,
    species: Vec<SpeciesSpec>,
    field: Option<FieldSpec>,
    init_quad_npts: Option<usize>,
}

impl Default for AppBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AppBuilder {
    pub fn new() -> Self {
        AppBuilder {
            conf: None,
            conf_bc: None,
            poly_order: 2,
            kind: BasisKind::Serendipity,
            cfl: 0.9,
            flux: FluxKind::Upwind,
            dispatch: KernelDispatch::Auto,
            species: Vec::new(),
            field: None,
            init_quad_npts: None,
        }
    }

    pub fn conf_grid(mut self, lower: &[f64], upper: &[f64], cells: &[usize]) -> Self {
        self.conf = Some((lower.to_vec(), upper.to_vec(), cells.to_vec()));
        self
    }

    /// Per-dimension configuration boundary conditions (default periodic).
    pub fn conf_bc(mut self, bc: Vec<Bc>) -> Self {
        self.conf_bc = Some(bc);
        self
    }

    pub fn poly_order(mut self, p: usize) -> Self {
        self.poly_order = p;
        self
    }

    pub fn basis(mut self, kind: BasisKind) -> Self {
        self.kind = kind;
        self
    }

    pub fn cfl(mut self, cfl: f64) -> Self {
        self.cfl = cfl;
        self
    }

    /// Kinetic-equation interface flux.
    pub fn vlasov_flux(mut self, flux: FluxKind) -> Self {
        self.flux = flux;
        self
    }

    /// Volume-kernel dispatch policy (default [`KernelDispatch::Auto`]:
    /// committed unrolled kernels when registered). Tests and benches use
    /// this to force either path.
    pub fn kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    pub fn species(mut self, s: SpeciesSpec) -> Self {
        self.species.push(s);
        self
    }

    pub fn field(mut self, f: FieldSpec) -> Self {
        self.field = Some(f);
        self
    }

    /// Gauss points per dimension for initial-condition projection
    /// (default `p + 3`).
    pub fn init_quadrature(mut self, npts: usize) -> Self {
        self.init_quad_npts = Some(npts);
        self
    }

    pub fn build(mut self) -> Result<App, String> {
        let (clo, chi, ccells) = self.conf.ok_or("configuration grid not specified")?;
        let cdim = ccells.len();
        if self.species.is_empty() {
            return Err("at least one species required".into());
        }
        let vdim = self.species[0].vcells.len();
        for s in &self.species {
            if s.vcells.len() != vdim || s.vlower.len() != vdim || s.vupper.len() != vdim {
                return Err(format!("species {} has inconsistent velocity dims", s.name));
            }
        }
        // All species share one velocity grid shape in this implementation
        // (as do the paper's runs); extents are per the first species.
        let vlo = self.species[0].vlower.clone();
        let vhi = self.species[0].vupper.clone();
        let vcells = self.species[0].vcells.clone();
        for s in &self.species {
            if s.vlower != vlo || s.vupper != vhi || s.vcells != vcells {
                return Err("all species must share one velocity grid in this build".into());
            }
        }
        let layout = PhaseLayout::new(cdim, vdim);
        let kernels = kernels_for(self.kind, layout, self.poly_order);
        let conf_grid = CartGrid::new(&clo, &chi, &ccells);
        let vel_grid = CartGrid::new(&vlo, &vhi, &vcells);
        let bc = self.conf_bc.unwrap_or_else(|| vec![Bc::Periodic; cdim]);
        let grid = PhaseGrid::new(conf_grid.clone(), vel_grid, bc.clone());

        let fspec = self.field.unwrap_or_else(|| FieldSpec::new(1.0));
        let params = PhmParams {
            c: fspec.c,
            chi_e: fspec.chi_e,
            chi_m: fspec.chi_m,
            epsilon0: fspec.epsilon0,
        };
        let maxwell = MaxwellDg::new(
            self.kind,
            conf_grid,
            bc,
            self.poly_order,
            params,
            fspec.flux,
        );

        let npts = self.init_quad_npts.unwrap_or(self.poly_order + 3);
        let mut species = Vec::new();
        let mut collisions: Vec<Option<LboOp>> = Vec::new();
        for spec in self.species.iter_mut() {
            let mut sp = Species::new(&spec.name, spec.charge, spec.mass, &grid, kernels.np());
            if let Some(init) = spec.init.as_mut() {
                sp.project_initial(&kernels, &grid, npts, init);
            }
            collisions.push(
                spec.collision_nu
                    .map(|nu| LboOp::new(Arc::clone(&kernels), grid.clone(), nu)),
            );
            species.push(sp);
        }

        let mut system =
            VlasovMaxwell::new(Arc::clone(&kernels), grid, maxwell, species, self.flux);
        if self.dispatch != KernelDispatch::Auto {
            system.set_kernel_dispatch(self.dispatch);
        }
        system.collisions = collisions;
        system.evolve_field = fspec.evolve;
        system.track_charge = fspec.chi_e != 0.0;

        // Initial EM field.
        let mut em = system.maxwell.new_field();
        if let Some(mut init) = fspec.init {
            project_field_ic(
                &system.maxwell.basis,
                &system.maxwell.grid,
                npts,
                &mut init,
                &mut em,
            );
        }
        if fspec.poisson_init {
            if cdim != 1 {
                return Err("with_poisson_init is implemented for 1D configurations".into());
            }
            poisson_init_1d(&mut system, &mut em)?;
        }
        let state = system.initial_state(em);
        let stepper = SspRk3::new(&system);
        Ok(App {
            system,
            state,
            stepper,
            time: 0.0,
            steps_taken: 0,
            cfl: self.cfl,
            fixed_dt: None,
        })
    }
}

/// Project per-component field initial conditions onto the conf basis.
fn project_field_ic(
    basis: &Basis,
    grid: &CartGrid,
    npts: usize,
    init: &mut FieldFn,
    em: &mut DgField,
) {
    let cdim = grid.ndim();
    let nc = basis.len();
    let mut cidx = vec![0usize; cdim];
    let mut center = vec![0.0; cdim];
    let mut buf = vec![0.0; nc];
    for lin in 0..grid.len() {
        grid.delinearize(lin, &mut cidx);
        grid.cell_center(&cidx, &mut center);
        for comp in 0..6 {
            let mut g = |z: &[f64]| init(z)[comp];
            project::project_cell(basis, npts, &center, grid.dx(), &mut g, &mut buf);
            em.cell_mut(lin)[comp * nc..(comp + 1) * nc].copy_from_slice(&buf);
        }
    }
}

/// Solve `dE_x/dx = ρ/ε₀` exactly on a periodic 1D configuration grid,
/// subtracting the neutralizing background (domain-average charge) and the
/// mean field (periodic gauge).
fn poisson_init_1d(system: &mut VlasovMaxwell, em: &mut DgField) -> Result<(), String> {
    let nc = system.kernels.nc();
    let grid = system.maxwell.grid.clone();
    let nconf = grid.len();
    // Charge density.
    let mut rho = DgField::zeros(nconf, nc);
    for sp in &system.species {
        let n = crate::moments::number_density(&system.kernels, &system.grid, &sp.f);
        for c in 0..nconf {
            for l in 0..nc {
                rho.cell_mut(c)[l] += sp.charge * n.cell(c)[l];
            }
        }
    }
    // Subtract the mean (neutralizing background): mean of ρ over the domain.
    let c0 = dg_basis::expand::const_coeff(&system.maxwell.basis);
    let mean: f64 = (0..nconf).map(|c| rho.cell(c)[0] / c0).sum::<f64>() / nconf as f64;
    for c in 0..nconf {
        rho.cell_mut(c)[0] -= mean * c0;
    }
    system.background_charge = mean;

    // Cumulative integration cell by cell; E(ξ) inside a cell is the exact
    // antiderivative of the modal ρ, projected back onto the basis.
    let dx = grid.dx()[0];
    let basis = &system.maxwell.basis;
    let inner = GaussRule::new(basis.poly_order() + 2);
    let proj_rule = GaussRule::new(basis.poly_order() + 2);
    let inv_eps = 1.0 / system.maxwell.params.epsilon0;
    let mut e_in = 0.0;
    let mut exc = vec![0.0; nc];
    let mut e_means = Vec::with_capacity(nconf);
    for c in 0..nconf {
        let r = rho.cell(c);
        // E(ξ) = E_in + (Δx/2)/ε₀ ∫_{−1}^{ξ} ρ_h dξ'.
        let e_at = |xi: f64| -> f64 {
            // Map the inner rule to [−1, ξ].
            let half = 0.5 * (xi + 1.0);
            let mut acc = 0.0;
            for (node, wgt) in inner.nodes.iter().zip(&inner.weights) {
                let t = -1.0 + half * (node + 1.0);
                acc += wgt * half * basis.eval_expansion(r, &[t]);
            }
            e_in + 0.5 * dx * inv_eps * acc
        };
        // Project E(ξ) onto the basis.
        exc.fill(0.0);
        for (node, wgt) in proj_rule.nodes.iter().zip(&proj_rule.weights) {
            let vals = basis.eval_all(&[*node]);
            let ev = e_at(*node);
            for l in 0..nc {
                exc[l] += wgt * ev * vals[l];
            }
        }
        em.cell_mut(c)[..nc].copy_from_slice(&exc);
        e_means.push(exc[0] / c0);
        e_in = e_at(1.0);
    }
    // Periodic gauge: subtract the mean field.
    let emean: f64 = e_means.iter().sum::<f64>() / nconf as f64;
    for c in 0..nconf {
        em.cell_mut(c)[0] -= emean * c0;
    }
    // Consistency: with zero net charge the field must close periodically.
    if (e_in).abs() > 1e-8 * (1.0 + emean.abs()) {
        // e_in now holds E at the domain end relative to the start.
        return Err(format!(
            "Poisson init inconsistency: net field jump {e_in:.3e} (non-neutral plasma?)"
        ));
    }
    Ok(())
}

/// A runnable simulation.
pub struct App {
    pub system: VlasovMaxwell,
    pub state: SystemState,
    stepper: SspRk3,
    time: f64,
    steps_taken: usize,
    cfl: f64,
    fixed_dt: Option<f64>,
}

impl App {
    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Override adaptive CFL stepping with a fixed `dt`.
    pub fn set_fixed_dt(&mut self, dt: f64) {
        self.fixed_dt = Some(dt);
    }

    /// Take one SSP-RK3 step; returns the `dt` used.
    pub fn step(&mut self) -> Result<f64, String> {
        let dt = match self.fixed_dt {
            Some(dt) => dt,
            None => suggest_dt(&self.system, &self.state, self.cfl),
        };
        self.step_dt(dt)?;
        Ok(dt)
    }

    /// Take one step with an explicit `dt`.
    pub fn step_dt(&mut self, dt: f64) -> Result<(), String> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(format!("invalid dt {dt}"));
        }
        self.stepper.step(&mut self.system, &mut self.state, dt);
        self.time += dt;
        self.steps_taken += 1;
        if !self.state.species_f[0].max_abs().is_finite() {
            return Err(format!("solution blew up at t = {}", self.time));
        }
        Ok(())
    }

    /// Advance until `self.time()` has increased by `duration` (the last
    /// step is clamped to land exactly).
    pub fn advance_by(&mut self, duration: f64) -> Result<(), String> {
        let t_end = self.time + duration;
        while self.time < t_end - 1e-14 {
            let dt = match self.fixed_dt {
                Some(dt) => dt,
                None => suggest_dt(&self.system, &self.state, self.cfl),
            };
            let dt = dt.min(t_end - self.time);
            self.step_dt(dt)?;
        }
        Ok(())
    }

    /// Conserved-quantity probe at the current time.
    pub fn conserved(&self) -> crate::diagnostics::ConservedQuantities {
        crate::diagnostics::probe(&self.system, &self.state, self.time)
    }

    /// EM field energy (convenience).
    pub fn field_energy(&self) -> f64 {
        self.system.field_energy(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::maxwellian;

    #[test]
    fn build_rejects_missing_pieces() {
        assert!(AppBuilder::new().build().is_err());
        assert!(AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[4])
            .build()
            .is_err());
    }

    #[test]
    fn minimal_app_steps() {
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[4])
            .poly_order(1)
            .species(
                SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[8])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        let q0 = app.conserved();
        app.advance_by(0.05).unwrap();
        let q1 = app.conserved();
        assert!(app.time() >= 0.05);
        assert!(((q1.numbers[0] - q0.numbers[0]) / q0.numbers[0]).abs() < 1e-12);
    }

    #[test]
    fn poisson_init_satisfies_gauss_law() {
        // sinusoidal density perturbation → E with dE/dx = ρ/ε₀.
        let kx = 2.0 * std::f64::consts::PI / 4.0;
        let app = AppBuilder::new()
            .conf_grid(&[0.0], &[4.0], &[16])
            .poly_order(2)
            .species(
                SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[12])
                    .initial(move |x, v| maxwellian(1.0 + 0.1 * (kx * x[0]).cos(), &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0).with_poisson_init())
            .build()
            .unwrap();
        // Analytic: ρ = −0.1 cos(kx) (mean removed), E = −0.1 sin(kx)/k.
        let nc = app.system.kernels.nc();
        let basis = &app.system.maxwell.basis;
        let grid = &app.system.maxwell.grid;
        for c in 0..grid.len() {
            let ex = &app.state.em.cell(c)[..nc];
            for &xi in &[-0.5, 0.0, 0.5] {
                let x = grid.center(0, c) + 0.5 * grid.dx()[0] * xi;
                let want = -0.1 * (kx * x).sin() / kx;
                let got = basis.eval_expansion(ex, &[xi]);
                assert!((got - want).abs() < 2e-4, "E at x={x}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn fixed_dt_is_respected() {
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[2])
            .poly_order(1)
            .species(
                SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[4])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        app.set_fixed_dt(1e-4);
        let dt = app.step().unwrap();
        assert_eq!(dt, 1e-4);
        assert_eq!(app.steps_taken(), 1);
    }
}
