//! The App system: declarative simulation assembly (paper Fig. 4).
//!
//! Gkeyll drives its C++ kernels from LuaJIT "App" scripts: the user
//! declares a configuration grid, species with initial conditions, and
//! field parameters; the framework wires kernels, moments, field solver and
//! time stepper together. [`AppBuilder`] is the Rust analogue — everything
//! a paper experiment needs in one fluent declaration:
//!
//! ```
//! use dg_core::app::{AppBuilder, FieldSpec, SpeciesSpec};
//! use dg_basis::BasisKind;
//!
//! let mut app = AppBuilder::new()
//!     .conf_grid(&[0.0], &[6.283], &[8])
//!     .poly_order(1)
//!     .basis(BasisKind::Serendipity)
//!     .species(SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[8]))
//!     .field(FieldSpec::new(1.0))
//!     .build()
//!     .unwrap();
//! let dt = app.step().unwrap();
//! assert!(dt > 0.0 && app.time() > 0.0);
//! ```

use crate::backend::{Backend, BackendFactory, Serial};
use crate::error::Error;
use crate::lbo::LboOp;
use crate::observer::{Frame, Observer, Trigger};
use crate::species::Species;
use crate::system::{validate_conf_bcs, FluxKind, SystemState, VlasovMaxwell};
use dg_basis::{project, Basis, BasisKind};
use dg_grid::{Bc, CartGrid, DgField, DimBc, PhaseGrid};
use dg_kernels::{kernels_for, KernelDispatch, PhaseLayout};
use dg_maxwell::flux::PhmParams;
use dg_maxwell::{MaxwellDg, MaxwellFlux};
use dg_poly::quad::GaussRule;
use dg_telemetry::{now_ns, Breadcrumb, Collector, DtRing, Phase, Registry, RunReport, Snapshot};
use std::sync::Arc;

type DistFn = Box<dyn FnMut(&[f64], &[f64]) -> f64>;
type FieldFn = Box<dyn FnMut(&[f64]) -> [f64; 6]>;

/// Declaration of one kinetic species.
pub struct SpeciesSpec {
    name: String,
    charge: f64,
    mass: f64,
    vlower: Vec<f64>,
    vupper: Vec<f64>,
    vcells: Vec<usize>,
    init: Option<DistFn>,
    collision_nu: Option<f64>,
    conf_bc: Option<Vec<DimBc>>,
    vel_bc: Option<Vec<DimBc>>,
}

impl SpeciesSpec {
    pub fn new(
        name: &str,
        charge: f64,
        mass: f64,
        vlower: &[f64],
        vupper: &[f64],
        vcells: &[usize],
    ) -> Self {
        SpeciesSpec {
            name: name.to_string(),
            charge,
            mass,
            vlower: vlower.to_vec(),
            vupper: vupper.to_vec(),
            vcells: vcells.to_vec(),
            init: None,
            collision_nu: None,
            conf_bc: None,
            vel_bc: None,
        }
    }

    /// Initial distribution `f₀(x, v)`.
    pub fn initial(mut self, f: impl FnMut(&[f64], &[f64]) -> f64 + 'static) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Enable Dougherty-LBO self collisions with frequency ν.
    pub fn collisions(mut self, nu: f64) -> Self {
        self.collision_nu = Some(nu);
        self
    }

    /// Override this species' configuration-space BCs (per dimension, per
    /// side). Periodicity must match the domain declared with
    /// [`AppBuilder::conf_bc`]; only the wall flavor may differ per
    /// species (e.g. reflecting electrons against absorbing ions).
    pub fn conf_bc(mut self, bc: Vec<impl Into<DimBc>>) -> Self {
        self.conf_bc = Some(bc.into_iter().map(Into::into).collect());
        self
    }

    /// Request velocity-space BCs. Only [`Bc::ZeroFlux`] is admissible —
    /// the velocity extremes carry no flux by construction (that is what
    /// conserves particles) — so anything else is a build error; the knob
    /// exists to make the constraint explicit and checkable.
    pub fn velocity_bc(mut self, bc: Vec<impl Into<DimBc>>) -> Self {
        self.vel_bc = Some(bc.into_iter().map(Into::into).collect());
        self
    }
}

/// Declaration of the electromagnetic field.
pub struct FieldSpec {
    c: f64,
    chi_e: f64,
    chi_m: f64,
    epsilon0: f64,
    flux: MaxwellFlux,
    init: Option<FieldFn>,
    poisson_init: bool,
    evolve: bool,
}

impl FieldSpec {
    pub fn new(c: f64) -> Self {
        FieldSpec {
            c,
            chi_e: 0.0,
            chi_m: 0.0,
            epsilon0: 1.0,
            flux: MaxwellFlux::Central,
            init: None,
            poisson_init: false,
            evolve: true,
        }
    }

    /// Initial `[Ex, Ey, Ez, Bx, By, Bz](x)`.
    pub fn with_ic(mut self, f: impl FnMut(&[f64]) -> [f64; 6] + 'static) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Solve Gauss's law for the initial `E_x` in 1D configurations (the
    /// classic electrostatic start of Landau-damping / two-stream setups).
    pub fn with_poisson_init(mut self) -> Self {
        self.poisson_init = true;
        self
    }

    /// Divergence-cleaning speed factors (0 disables).
    pub fn cleaning(mut self, chi_e: f64, chi_m: f64) -> Self {
        self.chi_e = chi_e;
        self.chi_m = chi_m;
        self
    }

    pub fn epsilon0(mut self, e: f64) -> Self {
        self.epsilon0 = e;
        self
    }

    pub fn flux(mut self, flux: MaxwellFlux) -> Self {
        self.flux = flux;
        self
    }

    /// Freeze the field (external-field-only kinetics).
    pub fn frozen(mut self) -> Self {
        self.evolve = false;
        self
    }
}

/// The simulation builder.
pub struct AppBuilder {
    conf: Option<(Vec<f64>, Vec<f64>, Vec<usize>)>,
    conf_bc: Option<Vec<DimBc>>,
    poly_order: usize,
    kind: BasisKind,
    cfl: f64,
    flux: FluxKind,
    dispatch: KernelDispatch,
    species: Vec<SpeciesSpec>,
    field: Option<FieldSpec>,
    init_quad_npts: Option<usize>,
    backend: Box<dyn BackendFactory>,
    backend_overridden: bool,
    threads: Option<usize>,
    telemetry: Option<bool>,
}

impl Default for AppBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AppBuilder {
    pub fn new() -> Self {
        AppBuilder {
            conf: None,
            conf_bc: None,
            poly_order: 2,
            kind: BasisKind::Serendipity,
            cfl: 0.9,
            flux: FluxKind::Upwind,
            dispatch: KernelDispatch::Auto,
            species: Vec::new(),
            field: None,
            init_quad_npts: None,
            backend: Box::new(Serial::default()),
            backend_overridden: false,
            threads: None,
            telemetry: None,
        }
    }

    pub fn conf_grid(mut self, lower: &[f64], upper: &[f64], cells: &[usize]) -> Self {
        self.conf = Some((lower.to_vec(), upper.to_vec(), cells.to_vec()));
        self
    }

    /// Per-dimension configuration boundary conditions (default periodic).
    /// Accepts plain [`Bc`] values (same treatment both sides) or
    /// [`DimBc`] pairs for per-side walls. These are the *domain* BCs: the
    /// field solver derives its treatment from them (walls become
    /// perfectly conducting boundaries), and species default to them
    /// unless overridden via [`SpeciesSpec::conf_bc`].
    pub fn conf_bc(mut self, bc: Vec<impl Into<DimBc>>) -> Self {
        self.conf_bc = Some(bc.into_iter().map(Into::into).collect());
        self
    }

    pub fn poly_order(mut self, p: usize) -> Self {
        self.poly_order = p;
        self
    }

    pub fn basis(mut self, kind: BasisKind) -> Self {
        self.kind = kind;
        self
    }

    pub fn cfl(mut self, cfl: f64) -> Self {
        self.cfl = cfl;
        self
    }

    /// Kinetic-equation interface flux.
    pub fn vlasov_flux(mut self, flux: FluxKind) -> Self {
        self.flux = flux;
        self
    }

    /// Kernel dispatch policy for all four families — volume, surface,
    /// moment, and LBO kernels (default [`KernelDispatch::Auto`]:
    /// committed unrolled kernels when registered). Tests and benches use
    /// this to force either path.
    pub fn kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    pub fn species(mut self, s: SpeciesSpec) -> Self {
        self.species.push(s);
        self
    }

    pub fn field(mut self, f: FieldSpec) -> Self {
        self.field = Some(f);
        self
    }

    /// Gauss points per dimension for initial-condition projection
    /// (default `p + 3`).
    pub fn init_quadrature(mut self, npts: usize) -> Self {
        self.init_quad_npts = Some(npts);
        self
    }

    /// Execution backend (default [`Serial`]). `dg-parallel` exports
    /// `RankParallel { ranks, threads }` for the two-level decomposition;
    /// the same declaration runs unchanged — and bit-identically — on
    /// either.
    pub fn backend(mut self, factory: impl BackendFactory + 'static) -> Self {
        self.backend = Box::new(factory);
        self.backend_overridden = true;
        self
    }

    /// Intra-process worker threads for the default [`Serial`] backend's
    /// cell-block parallel RHS sweep (default 1; trajectories are
    /// bit-identical for every thread count). `0` is a build error, as is
    /// combining this with an explicit [`AppBuilder::backend`] — parallel
    /// factories carry their own thread knob (`RankParallel { threads }`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Enable (or force off) phase telemetry: per-phase timers and work
    /// counters across the backend, surfaced through
    /// [`App::telemetry_report`], observer frames, and blow-up
    /// breadcrumbs. Defaults to the `DG_TELEMETRY` environment variable
    /// (`1` enables). Telemetry is observational: trajectories are
    /// bit-identical with it on or off (`tests/telemetry.rs`), and the
    /// instrumented hot path stays allocation-free
    /// (`tests/alloc_free.rs`).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = Some(on);
        self
    }

    pub fn build(mut self) -> Result<App, Error> {
        let (clo, chi, ccells) = self
            .conf
            .ok_or_else(|| Error::Build("configuration grid not specified".into()))?;
        let cdim = ccells.len();
        if self.species.is_empty() {
            return Err(Error::Build("at least one species required".into()));
        }
        let vdim = self.species[0].vcells.len();
        for s in &self.species {
            if s.vcells.len() != vdim || s.vlower.len() != vdim || s.vupper.len() != vdim {
                return Err(Error::Build(format!(
                    "species {} has inconsistent velocity dims",
                    s.name
                )));
            }
        }
        // All species share one velocity grid shape in this implementation
        // (as do the paper's runs); extents are per the first species.
        let vlo = self.species[0].vlower.clone();
        let vhi = self.species[0].vupper.clone();
        let vcells = self.species[0].vcells.clone();
        for s in &self.species {
            if s.vlower != vlo || s.vupper != vhi || s.vcells != vcells {
                return Err(Error::Build(
                    "all species must share one velocity grid in this build".into(),
                ));
            }
        }
        let layout = PhaseLayout::new(cdim, vdim);
        let kernels = kernels_for(self.kind, layout, self.poly_order);
        let conf_grid = CartGrid::new(&clo, &chi, &ccells);
        let vel_grid = CartGrid::new(&vlo, &vhi, &vcells);
        let bc = self
            .conf_bc
            .unwrap_or_else(|| vec![DimBc::periodic(); cdim]);
        if bc.len() != cdim {
            return Err(Error::Build(format!(
                "{} boundary-condition pairs for {cdim} configuration dimensions",
                bc.len()
            )));
        }
        let grid = PhaseGrid::new(conf_grid.clone(), vel_grid, bc.clone());
        // Domain BCs: side pairing, Reflect symmetry. (Periodicity agrees
        // with itself by construction — the grid *is* the domain.)
        validate_conf_bcs(&grid, &bc, "domain")?;
        // Per-species requests: velocity space must stay zero-flux; conf
        // overrides may only change the wall flavor.
        for spec in &self.species {
            if let Some(vbc) = &spec.vel_bc {
                if vbc.len() != vdim {
                    return Err(Error::Build(format!(
                        "species {}: {} velocity BC pairs for {vdim} velocity dimensions",
                        spec.name,
                        vbc.len()
                    )));
                }
                if let Some(j) = vbc
                    .iter()
                    .position(|b| b.lower != Bc::ZeroFlux || b.upper != Bc::ZeroFlux)
                {
                    return Err(Error::Build(format!(
                        "species {}, velocity dim {j}: only ZeroFlux velocity-space \
                         boundaries are supported (particle conservation); got {:?}/{:?}",
                        spec.name, vbc[j].lower, vbc[j].upper
                    )));
                }
            }
            // Per-species conf overrides are validated by `set_conf_bcs`
            // below — one rule set, one code path.
        }

        let fspec = self.field.unwrap_or_else(|| FieldSpec::new(1.0));
        let params = PhmParams {
            c: fspec.c,
            chi_e: fspec.chi_e,
            chi_m: fspec.chi_m,
            epsilon0: fspec.epsilon0,
        };
        let maxwell = MaxwellDg::new(
            self.kind,
            conf_grid,
            bc,
            self.poly_order,
            params,
            fspec.flux,
        );

        let npts = self.init_quad_npts.unwrap_or(self.poly_order + 3);
        let mut species = Vec::new();
        let mut collisions: Vec<Option<LboOp>> = Vec::new();
        for spec in self.species.iter_mut() {
            let mut sp = Species::new(&spec.name, spec.charge, spec.mass, &grid, kernels.np());
            if let Some(init) = spec.init.as_mut() {
                sp.project_initial(&kernels, &grid, npts, init);
            }
            collisions.push(spec.collision_nu.map(|nu| {
                LboOp::with_dispatch(Arc::clone(&kernels), grid.clone(), nu, self.dispatch)
            }));
            species.push(sp);
        }

        let mut system =
            VlasovMaxwell::new(Arc::clone(&kernels), grid, maxwell, species, self.flux);
        if self.dispatch != KernelDispatch::Auto {
            system.set_kernel_dispatch(self.dispatch);
        }
        system.set_collisions(collisions);
        system.set_evolve_field(fspec.evolve);
        system.set_track_charge(fspec.chi_e != 0.0);
        for (s, spec) in self.species.iter_mut().enumerate() {
            if let Some(cbc) = spec.conf_bc.take() {
                system.set_conf_bcs(s, cbc)?;
            }
        }

        // Initial EM field.
        let mut em = system.maxwell.new_field();
        if let Some(mut init) = fspec.init {
            project_field_ic(
                &system.maxwell.basis,
                &system.maxwell.grid,
                npts,
                &mut init,
                &mut em,
            );
        }
        if fspec.poisson_init {
            if cdim != 1 {
                return Err(Error::Build(
                    "with_poisson_init is implemented for 1D configurations".into(),
                ));
            }
            if !system.grid.is_conf_periodic(0) {
                return Err(Error::Build(
                    "with_poisson_init assumes a periodic configuration (it fixes the \
                     periodic gauge); start bounded runs from an explicit field IC"
                        .into(),
                ));
            }
            poisson_init_1d(&mut system, &mut em)?;
        }
        let state = system.initial_state(em);
        if let Some(n) = self.threads {
            if self.backend_overridden {
                return Err(Error::Build(
                    "AppBuilder::threads applies to the default Serial backend; an explicit \
                     backend carries its own thread knob (e.g. RankParallel { threads })"
                        .into(),
                ));
            }
            if n == 0 {
                return Err(Error::Build(
                    "AppBuilder::threads needs n ≥ 1, got 0".into(),
                ));
            }
            self.backend = Box::new(Serial { threads: n });
        }
        let mut backend = self.backend.make(system)?;
        let telemetry_on = self.telemetry.unwrap_or_else(env_telemetry);
        let (probe, telemetry) = if telemetry_on {
            let reg = Arc::new(Registry::new(backend.telemetry_slots()));
            backend.instrument(&reg);
            let probe = reg.collector(0);
            (
                probe,
                Some(TelemetryState {
                    reg,
                    dt_ring: DtRing::default(),
                    wall_ns: 0,
                }),
            )
        } else {
            (Collector::default(), None)
        };
        Ok(App {
            backend,
            state,
            time: 0.0,
            steps_taken: 0,
            cfl: self.cfl,
            fixed_dt: None,
            last_dt: 0.0,
            probe,
            telemetry,
        })
    }
}

/// Default telemetry policy: the `DG_TELEMETRY` environment variable
/// (anything but unset/empty/`0` enables collection).
fn env_telemetry() -> bool {
    std::env::var("DG_TELEMETRY")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Project per-component field initial conditions onto the conf basis.
fn project_field_ic(
    basis: &Basis,
    grid: &CartGrid,
    npts: usize,
    init: &mut FieldFn,
    em: &mut DgField,
) {
    let cdim = grid.ndim();
    let nc = basis.len();
    let mut cidx = vec![0usize; cdim];
    let mut center = vec![0.0; cdim];
    let mut buf = vec![0.0; nc];
    for lin in 0..grid.len() {
        grid.delinearize(lin, &mut cidx);
        grid.cell_center(&cidx, &mut center);
        for comp in 0..6 {
            let mut g = |z: &[f64]| init(z)[comp];
            project::project_cell(basis, npts, &center, grid.dx(), &mut g, &mut buf);
            em.cell_mut(lin)[comp * nc..(comp + 1) * nc].copy_from_slice(&buf);
        }
    }
}

/// Solve `dE_x/dx = ρ/ε₀` exactly on a periodic 1D configuration grid,
/// subtracting the neutralizing background (domain-average charge) and the
/// mean field (periodic gauge).
fn poisson_init_1d(system: &mut VlasovMaxwell, em: &mut DgField) -> Result<(), Error> {
    let nc = system.kernels.nc();
    let grid = system.maxwell.grid.clone();
    let nconf = grid.len();
    // Charge density.
    let mut rho = DgField::zeros(nconf, nc);
    for sp in &system.species {
        let n = crate::moments::number_density(&system.kernels, &system.grid, &sp.f);
        for c in 0..nconf {
            for l in 0..nc {
                rho.cell_mut(c)[l] += sp.charge * n.cell(c)[l];
            }
        }
    }
    // Subtract the mean (neutralizing background): mean of ρ over the domain.
    let c0 = dg_basis::expand::const_coeff(&system.maxwell.basis);
    let mean: f64 = (0..nconf).map(|c| rho.cell(c)[0] / c0).sum::<f64>() / nconf as f64;
    for c in 0..nconf {
        rho.cell_mut(c)[0] -= mean * c0;
    }
    system.set_background_charge(mean);

    // Cumulative integration cell by cell; E(ξ) inside a cell is the exact
    // antiderivative of the modal ρ, projected back onto the basis.
    let dx = grid.dx()[0];
    let basis = &system.maxwell.basis;
    let inner = GaussRule::new(basis.poly_order() + 2);
    let proj_rule = GaussRule::new(basis.poly_order() + 2);
    let inv_eps = 1.0 / system.maxwell.params.epsilon0;
    let mut e_in = 0.0;
    let mut exc = vec![0.0; nc];
    let mut e_means = Vec::with_capacity(nconf);
    for c in 0..nconf {
        let r = rho.cell(c);
        // E(ξ) = E_in + (Δx/2)/ε₀ ∫_{−1}^{ξ} ρ_h dξ'.
        let e_at = |xi: f64| -> f64 {
            // Map the inner rule to [−1, ξ].
            let half = 0.5 * (xi + 1.0);
            let mut acc = 0.0;
            for (node, wgt) in inner.nodes.iter().zip(&inner.weights) {
                let t = -1.0 + half * (node + 1.0);
                acc += wgt * half * basis.eval_expansion(r, &[t]);
            }
            e_in + 0.5 * dx * inv_eps * acc
        };
        // Project E(ξ) onto the basis.
        exc.fill(0.0);
        for (node, wgt) in proj_rule.nodes.iter().zip(&proj_rule.weights) {
            let vals = basis.eval_all(&[*node]);
            let ev = e_at(*node);
            for l in 0..nc {
                exc[l] += wgt * ev * vals[l];
            }
        }
        em.cell_mut(c)[..nc].copy_from_slice(&exc);
        e_means.push(exc[0] / c0);
        e_in = e_at(1.0);
    }
    // Periodic gauge: subtract the mean field.
    let emean: f64 = e_means.iter().sum::<f64>() / nconf as f64;
    for c in 0..nconf {
        em.cell_mut(c)[0] -= emean * c0;
    }
    // Consistency: with zero net charge the field must close periodically.
    if (e_in).abs() > 1e-8 * (1.0 + emean.abs()) {
        // e_in now holds E at the domain end relative to the start.
        return Err(Error::Build(format!(
            "Poisson init inconsistency: net field jump {e_in:.3e} (non-neutral plasma?)"
        )));
    }
    Ok(())
}

/// Termination tolerance for the run/advance loops: relative to the
/// target time, so long runs (`t_end ~ 60`) never take a spurious
/// ulp-sized final step, while short runs keep landing exactly.
fn end_tolerance(t_end: f64) -> f64 {
    4.0 * f64::EPSILON * t_end.abs().max(1.0)
}

/// Per-observer scheduling state inside one `App::run` call.
enum Sched {
    Time { next: f64, period: f64 },
    Steps { period: usize },
    End,
}

/// Run-long telemetry carried by an instrumented [`App`]: the registry
/// the backend writes into, the recent-dt trace, and accumulated
/// stepping wall time.
struct TelemetryState {
    reg: Arc<Registry>,
    dt_ring: DtRing,
    wall_ns: u64,
}

/// A runnable simulation: a declaration bound to an execution
/// [`Backend`]. Diagnostics reach the system and state through the
/// accessors; stepping goes through [`App::step`], [`App::advance_by`],
/// or the observer-scheduled [`App::run`] driver.
pub struct App {
    backend: Box<dyn Backend>,
    state: SystemState,
    time: f64,
    steps_taken: usize,
    cfl: f64,
    fixed_dt: Option<f64>,
    /// dt of the last *accepted* step (0 before the first).
    last_dt: f64,
    /// Slot-0 collector for App-level phases (step control, observers,
    /// IO); the zero-cost `Noop` when telemetry is off.
    probe: Collector,
    telemetry: Option<TelemetryState>,
}

impl App {
    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The underlying system (operators, species, grids) — diagnostics
    /// access, backend-agnostic.
    pub fn system(&self) -> &VlasovMaxwell {
        self.backend.system()
    }

    /// Mutable system access (dispatch forcing, collision swaps).
    pub fn system_mut(&mut self) -> &mut VlasovMaxwell {
        self.backend.system_mut()
    }

    /// The current dynamical state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Mutable state access (custom initial data, hand-wired drivers).
    pub fn state_mut(&mut self) -> &mut SystemState {
        &mut self.state
    }

    /// The executing backend's tag ("serial", "rank-parallel").
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Dissolve the App into its system and state (hand-wired drivers,
    /// nodal twins, the scaling harness).
    pub fn into_parts(self) -> (VlasovMaxwell, SystemState) {
        (self.backend.into_system(), self.state)
    }

    /// Restore a checkpointed `(state, time)` pair — the restart path.
    /// Continuing with the same `dt` policy reproduces the uninterrupted
    /// trajectory bit-for-bit (asserted in the restart integration test).
    ///
    /// Snapshots do not record the step counter; [`App::steps_taken`]
    /// keeps its current value. Restart tooling that relies on
    /// step-stamped artifacts (e.g. the `Checkpoint` observer's file
    /// names) should re-align it with [`App::set_steps_taken`] so resumed
    /// runs don't re-stamp — and overwrite — pre-interruption outputs.
    pub fn restore(&mut self, state: SystemState, time: f64) -> Result<(), Error> {
        let shape_ok = state.species_f.len() == self.state.species_f.len()
            && state
                .species_f
                .iter()
                .zip(&self.state.species_f)
                .all(|(a, b)| a.ncells() == b.ncells() && a.ncoeff() == b.ncoeff())
            && state.em.ncells() == self.state.em.ncells()
            && state.em.ncoeff() == self.state.em.ncoeff();
        if !shape_ok {
            return Err(Error::Build(
                "restored state shape does not match this App's declaration".into(),
            ));
        }
        self.state = state;
        self.time = time;
        Ok(())
    }

    /// Re-align the step counter after a [`App::restore`] (it is not part
    /// of a snapshot). Has no effect on the trajectory — only on
    /// step-triggered observers and step-stamped artifact names.
    pub fn set_steps_taken(&mut self, steps: usize) {
        self.steps_taken = steps;
    }

    /// Override adaptive CFL stepping with a fixed `dt`.
    pub fn set_fixed_dt(&mut self, dt: f64) {
        self.fixed_dt = Some(dt);
    }

    /// The `dt` the driver would take next (fixed override or CFL bound).
    pub fn suggest_dt(&self) -> f64 {
        let _span = self.probe.span(Phase::StepControl);
        match self.fixed_dt {
            Some(dt) => dt,
            None => self.backend.suggest_dt(&self.state, self.cfl),
        }
    }

    /// Take one SSP-RK3 step; returns the `dt` used.
    pub fn step(&mut self) -> Result<f64, Error> {
        let dt = self.suggest_dt();
        self.step_dt(dt)?;
        Ok(dt)
    }

    /// Take one step with an explicit `dt`.
    pub fn step_dt(&mut self, dt: f64) -> Result<(), Error> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(Error::InvalidDt(dt));
        }
        // Step index of the step being attempted (completed steps so far).
        let step_index = self.steps_taken as u64;
        let t0 = if self.telemetry.is_some() {
            now_ns()
        } else {
            0
        };
        self.backend.step(&mut self.state, dt);
        if let Some(tel) = self.telemetry.as_mut() {
            tel.wall_ns += now_ns().saturating_sub(t0);
        }
        self.time += dt;
        self.steps_taken += 1;
        for (s, f) in self.state.species_f.iter().enumerate() {
            if !f.max_abs().is_finite() {
                let name = self.backend.system().species[s].name.clone();
                return Err(self.blow_up(Some(name), step_index));
            }
        }
        if !self.state.em.max_abs().is_finite() {
            return Err(self.blow_up(None, step_index));
        }
        // Step accepted: record its dt (failed steps never enter the
        // trace, so breadcrumbs show the last *good* history).
        self.last_dt = dt;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.dt_ring.push(dt);
        }
        Ok(())
    }

    /// Assemble a blow-up error carrying the step index, the last
    /// accepted dt, and — when telemetry is on — a breadcrumb with the
    /// recent dt trace and the phase snapshot at the failure instant.
    fn blow_up(&self, species: Option<String>, step: u64) -> Error {
        Error::BlowUp {
            time: self.time,
            species,
            step,
            last_dt: self.last_dt,
            breadcrumb: self.telemetry.as_ref().map(|tel| {
                Box::new(Breadcrumb {
                    dt_trace: tel.dt_ring.to_vec(),
                    phases: tel.reg.snapshot(),
                })
            }),
        }
    }

    /// Advance until `self.time()` has increased by `duration` (the last
    /// step is clamped to land exactly).
    pub fn advance_by(&mut self, duration: f64) -> Result<(), Error> {
        let t_end = self.time + duration;
        let tol = end_tolerance(t_end);
        while self.time < t_end - tol {
            let dt = self.suggest_dt().min(t_end - self.time);
            self.step_dt(dt)?;
        }
        Ok(())
    }

    /// The run driver: advance to `until` with trigger-scheduled
    /// observers (see [`crate::observer`] for the scheduling semantics).
    /// Steps are clamped so `EveryTime` observers sample at exactly their
    /// due times and the run lands exactly on `until`.
    pub fn run(&mut self, until: f64, observers: &mut [&mut dyn Observer]) -> Result<(), Error> {
        if !until.is_finite() {
            return Err(Error::Build(format!("run target time {until} not finite")));
        }
        let tol = end_tolerance(until);
        let mut scheds = Vec::with_capacity(observers.len());
        for obs in observers.iter() {
            scheds.push(match obs.trigger() {
                Trigger::EveryTime(period) => {
                    if !(period.is_finite() && period > 0.0) {
                        return Err(Error::Build(format!(
                            "observer {:?}: EveryTime period must be positive, got {period}",
                            obs.name()
                        )));
                    }
                    // Schedule on the absolute simulation clock — the
                    // smallest multiple of `period` past the current time
                    // — so segmented/resumed runs keep sampling the same
                    // grid as an uninterrupted one (for a fresh run this
                    // is exactly `start + period`).
                    let mut next = ((self.time / period).floor() + 1.0) * period;
                    while next <= self.time + tol {
                        next += period;
                    }
                    Sched::Time { next, period }
                }
                Trigger::EverySteps(period) => {
                    if period == 0 {
                        return Err(Error::Build(format!(
                            "observer {:?}: EverySteps period must be ≥ 1",
                            obs.name()
                        )));
                    }
                    Sched::Steps { period }
                }
                Trigger::AtEnd => Sched::End,
            });
        }

        // Initial firing for periodic observers: the t = start sample.
        for (obs, sched) in observers.iter_mut().zip(&scheds) {
            if !matches!(sched, Sched::End) {
                fire(
                    self.backend.system(),
                    &self.state,
                    self.time,
                    self.steps_taken,
                    false,
                    &self.probe,
                    self.telemetry_snapshot(),
                    &mut **obs,
                )?;
            }
        }

        let mut steps_run = 0usize;
        while self.time < until - tol {
            let mut dt = self.suggest_dt().min(until - self.time);
            for sched in &scheds {
                if let Sched::Time { next, .. } = sched {
                    if *next < until {
                        dt = dt.min(*next - self.time);
                    }
                }
            }
            self.step_dt(dt)?;
            steps_run += 1;
            for (obs, sched) in observers.iter_mut().zip(scheds.iter_mut()) {
                let due = match sched {
                    Sched::Time { next, period } => {
                        let due = self.time >= *next - tol;
                        if due {
                            // Re-arm past the current clock (guards against
                            // double firing from rounding residue).
                            while *next <= self.time + tol {
                                *next += *period;
                            }
                        }
                        due
                    }
                    Sched::Steps { period } => steps_run.is_multiple_of(*period),
                    Sched::End => false,
                };
                if due {
                    fire(
                        self.backend.system(),
                        &self.state,
                        self.time,
                        self.steps_taken,
                        false,
                        &self.probe,
                        self.telemetry_snapshot(),
                        &mut **obs,
                    )?;
                }
            }
        }

        // Final firing for AtEnd observers.
        for (obs, sched) in observers.iter_mut().zip(&scheds) {
            if matches!(sched, Sched::End) {
                fire(
                    self.backend.system(),
                    &self.state,
                    self.time,
                    self.steps_taken,
                    true,
                    &self.probe,
                    self.telemetry_snapshot(),
                    &mut **obs,
                )?;
            }
        }
        Ok(())
    }

    /// Whether this App was built with telemetry collection enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Merged phase/counter snapshot across every backend slot, or
    /// `None` when telemetry is off.
    pub fn telemetry_snapshot(&self) -> Option<Snapshot> {
        self.telemetry.as_ref().map(|tel| tel.reg.snapshot())
    }

    /// End-of-run report under `name`, or `None` when telemetry is off.
    pub fn telemetry_report(&self, name: &str) -> Option<RunReport> {
        self.telemetry.as_ref().map(|tel| RunReport {
            name: name.to_string(),
            wall_s: tel.wall_ns as f64 * 1e-9,
            steps: self.steps_taken as u64,
            last_dt: self.last_dt,
            dt_trace: tel.dt_ring.to_vec(),
            nslots: tel.reg.nslots(),
            snapshot: tel.reg.snapshot(),
        })
    }

    /// Crash-safe `telemetry.json` write (no-op returning `Ok(false)`
    /// when telemetry is off; `Ok(true)` after a successful write).
    pub fn write_telemetry(&self, path: &std::path::Path, name: &str) -> Result<bool, Error> {
        let Some(report) = self.telemetry_report(name) else {
            return Ok(false);
        };
        let _span = self.probe.span(Phase::Io);
        report.write_atomic(path)?;
        Ok(true)
    }

    /// Conserved-quantity probe at the current time.
    pub fn conserved(&self) -> crate::diagnostics::ConservedQuantities {
        crate::diagnostics::probe(self.backend.system(), &self.state, self.time)
    }

    /// EM field energy (convenience).
    pub fn field_energy(&self) -> f64 {
        self.backend.system().field_energy(&self.state)
    }
}

/// Invoke one observer, wrapping foreign errors with its name.
#[allow(clippy::too_many_arguments)]
fn fire(
    system: &VlasovMaxwell,
    state: &SystemState,
    time: f64,
    steps: usize,
    at_end: bool,
    probe: &Collector,
    metrics: Option<Snapshot>,
    obs: &mut dyn Observer,
) -> Result<(), Error> {
    let _span = probe.span(Phase::Observers);
    let frame = Frame {
        system,
        state,
        time,
        steps,
        at_end,
        metrics,
    };
    obs.observe(&frame).map_err(|e| match e {
        Error::Io(io) => Error::Observer {
            name: obs.name().to_string(),
            message: io.to_string(),
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::maxwellian;

    #[test]
    fn build_rejects_missing_pieces() {
        assert!(AppBuilder::new().build().is_err());
        assert!(AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[4])
            .build()
            .is_err());
    }

    #[test]
    fn minimal_app_steps() {
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[4])
            .poly_order(1)
            .species(
                SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[8])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        let q0 = app.conserved();
        app.advance_by(0.05).unwrap();
        let q1 = app.conserved();
        assert!(app.time() >= 0.05);
        assert!(((q1.numbers[0] - q0.numbers[0]) / q0.numbers[0]).abs() < 1e-12);
    }

    #[test]
    fn poisson_init_satisfies_gauss_law() {
        // sinusoidal density perturbation → E with dE/dx = ρ/ε₀.
        let kx = 2.0 * std::f64::consts::PI / 4.0;
        let app = AppBuilder::new()
            .conf_grid(&[0.0], &[4.0], &[16])
            .poly_order(2)
            .species(
                SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[12])
                    .initial(move |x, v| maxwellian(1.0 + 0.1 * (kx * x[0]).cos(), &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0).with_poisson_init())
            .build()
            .unwrap();
        // Analytic: ρ = −0.1 cos(kx) (mean removed), E = −0.1 sin(kx)/k.
        let nc = app.system().kernels.nc();
        let basis = &app.system().maxwell.basis;
        let grid = &app.system().maxwell.grid;
        for c in 0..grid.len() {
            let ex = &app.state().em.cell(c)[..nc];
            for &xi in &[-0.5, 0.0, 0.5] {
                let x = grid.center(0, c) + 0.5 * grid.dx()[0] * xi;
                let want = -0.1 * (kx * x).sin() / kx;
                let got = basis.eval_expansion(ex, &[xi]);
                assert!((got - want).abs() < 2e-4, "E at x={x}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn run_schedules_observers_and_lands_exactly() {
        use crate::observer::{observe, Trigger};
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[2])
            .poly_order(1)
            .species(
                SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[4])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        app.set_fixed_dt(3e-3);
        let mut sample_times = Vec::new();
        let mut step_fires = 0usize;
        let mut end_frames = Vec::new();
        {
            let mut sampler = observe(Trigger::EveryTime(0.01), |fr| {
                sample_times.push(fr.time);
                Ok(())
            });
            let mut per_step = observe(Trigger::EverySteps(2), |_fr| {
                step_fires += 1;
                Ok(())
            });
            let mut at_end = observe(Trigger::AtEnd, |fr| {
                end_frames.push((fr.time, fr.at_end));
                Ok(())
            });
            app.run(0.03, &mut [&mut sampler, &mut per_step, &mut at_end])
                .unwrap();
        }
        // EveryTime: initial sample + one per 0.01 boundary (steps clamp to
        // land exactly on the multiples).
        assert_eq!(sample_times.len(), 4, "samples at {sample_times:?}");
        for (i, t) in sample_times.iter().enumerate() {
            assert!((t - 0.01 * i as f64).abs() < 1e-12, "sample {i} at {t}");
        }
        // AtEnd: exactly once, flagged, at the target time.
        assert_eq!(end_frames.len(), 1);
        assert!(end_frames[0].1);
        assert!((end_frames[0].0 - 0.03).abs() < 1e-12);
        // EverySteps(2) fired at start plus every other step.
        assert!(step_fires >= 2);
        assert!((app.time() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn every_time_stays_on_the_absolute_grid_across_run_segments() {
        use crate::observer::{observe, Trigger};
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[2])
            .poly_order(1)
            .species(
                SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[4])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        app.set_fixed_dt(1e-3);
        let mut times = Vec::new();
        {
            let mut sampler = observe(Trigger::EveryTime(0.01), |fr| {
                times.push(fr.time);
                Ok(())
            });
            // Split one run at an off-grid point: the second segment must
            // keep sampling multiples of 0.01 (0.02, 0.03), not
            // start-relative times (0.025).
            app.run(0.015, &mut [&mut sampler]).unwrap();
            app.run(0.03, &mut [&mut sampler]).unwrap();
        }
        assert!(
            times.iter().any(|t| (t - 0.02).abs() < 1e-12),
            "missing on-grid sample at 0.02: {times:?}"
        );
        assert!(
            !times.iter().any(|t| (t - 0.025).abs() < 1e-12),
            "off-grid start-relative sample leaked in: {times:?}"
        );
    }

    #[test]
    fn run_rejects_bad_triggers_and_observer_errors_carry_names() {
        use crate::observer::{observe, Trigger};
        let build = || {
            AppBuilder::new()
                .conf_grid(&[0.0], &[1.0], &[2])
                .poly_order(1)
                .species(
                    SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[4])
                        .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
                )
                .field(FieldSpec::new(1.0))
                .build()
                .unwrap()
        };
        let mut app = build();
        let mut bad = observe(Trigger::EveryTime(0.0), |_| Ok(()));
        assert!(matches!(
            app.run(0.01, &mut [&mut bad]),
            Err(Error::Build(_))
        ));

        let mut app = build();
        let mut failing = observe(Trigger::EverySteps(1), |_| {
            Err(Error::Io(std::io::Error::other("disk full")))
        })
        .named("ckpt");
        let err = app.run(0.01, &mut [&mut failing]).unwrap_err();
        match err {
            Error::Observer { name, message } => {
                assert_eq!(name, "ckpt");
                assert!(message.contains("disk full"));
            }
            other => panic!("expected Observer error, got {other:?}"),
        }
    }

    #[test]
    fn advance_by_termination_is_relative_not_absolute() {
        // At t_end ≈ 60 an absolute 1e-14 epsilon sits below one ulp of the
        // clock, which used to allow a spurious ulp-sized trailing step.
        // The relative tolerance must cover at least a few ulps there.
        let ulp60 = 60.0f64.next_up() - 60.0;
        assert!(super::end_tolerance(60.0) > 2.0 * ulp60);
        assert!(super::end_tolerance(0.02) < 1e-14);
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[2])
            .poly_order(1)
            .species(
                SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[4])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        app.set_fixed_dt(2e-3);
        app.advance_by(0.01).unwrap();
        let steps = app.steps_taken();
        assert_eq!(steps, 5, "exactly duration/dt steps, no trailing sliver");
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let build = |nv: usize| {
            AppBuilder::new()
                .conf_grid(&[0.0], &[1.0], &[2])
                .poly_order(1)
                .species(
                    SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[nv])
                        .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
                )
                .field(FieldSpec::new(1.0))
                .build()
                .unwrap()
        };
        let donor = build(6);
        let mut app = build(4);
        let (_, state) = donor.into_parts();
        assert!(matches!(app.restore(state, 0.5), Err(Error::Build(_))));
        let twin = build(4);
        let (_, state) = twin.into_parts();
        app.restore(state, 0.5).unwrap();
        assert_eq!(app.time(), 0.5);
    }

    #[test]
    fn fixed_dt_is_respected() {
        let mut app = AppBuilder::new()
            .conf_grid(&[0.0], &[1.0], &[2])
            .poly_order(1)
            .species(
                SpeciesSpec::new("e", -1.0, 1.0, &[-4.0], &[4.0], &[4])
                    .initial(|_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(1.0))
            .build()
            .unwrap();
        app.set_fixed_dt(1e-4);
        let dt = app.step().unwrap();
        assert_eq!(dt, 1e-4);
        assert_eq!(app.steps_taken(), 1);
    }
}
