//! # dg-core — the alias-free modal DG Vlasov–Maxwell solver
//!
//! The paper's primary contribution assembled into a working kinetic code:
//!
//! * [`vlasov`] — the collisionless phase-space update
//!   `∂f/∂t + ∇_x·(v f) + ∇_v·(α f) = 0` with
//!   `α = (q/m)(E + v×B)`, evaluated entirely through the alias-free,
//!   matrix-free, quadrature-free kernels of `dg-kernels`;
//! * [`species`] / [`moments`] — per-species distribution functions and the
//!   exact velocity moments that couple them to Maxwell's equations;
//! * [`system`] — the coupled Vlasov–Maxwell system (multiple species +
//!   PHM field solver + current coupling) with its conserved-quantity
//!   bookkeeping (mass exactly; energy with central fluxes, §II);
//! * [`ssprk`] / [`cfl`] — the three-stage, third-order strong-stability-
//!   preserving Runge–Kutta stepper used in all the paper's runs;
//! * [`lbo`] — the Dougherty/Lenard–Bernstein Fokker–Planck collision
//!   operator (the paper's footnote 7: "roughly doubles the cost");
//! * [`app`] — a builder-style front end mirroring Gkeyll's App system
//!   (Fig. 4): declare a domain, species with initial conditions, and field
//!   parameters; get a runnable simulation;
//! * [`blocks`] — intra-rank shared-memory parallelism: the RHS sweep
//!   split into contiguous dim-0 cell blocks on a persistent worker pool,
//!   bit-identical to serial for any thread count;
//! * [`backend`] / [`observer`] / [`error`] — the run-driver layer: one
//!   App API over serial and rank-parallel execution, trigger-scheduled
//!   observers replacing hand-rolled sampling loops, and the typed error
//!   taxonomy of every fallible public operation.

pub mod app;
pub mod backend;
pub mod blocks;
pub mod cfl;
pub mod diagnostics;
pub mod error;
pub mod lbo;
pub mod moments;
pub mod observer;
pub mod species;
pub mod ssprk;
pub mod system;
pub mod vlasov;

pub use backend::{Backend, BackendFactory, Serial};
pub use error::Error;
pub use observer::{observe, Frame, Observer, Trigger};
pub use species::Species;
pub use system::{FluxKind, SystemState, VlasovMaxwell};
