//! CFL-stable time-step estimation.
//!
//! The standard explicit-DG bound: contributions `(2p+1) |λ_dir| / Δ_dir`
//! accumulate over all phase-space directions and the field solver;
//! `dt ≤ cfl / Σ_dir …`. Streaming speeds come from the velocity-grid
//! extents (exact); acceleration speeds from rigorous modal sup bounds of
//! the fields.

// Stencil/loop style: index-coupled per-dimension sweeps index several arrays in lockstep;
// `needless_range_loop` rewrites would obscure that (workspace allow
// was scoped down to the modules that need it).
#![allow(clippy::needless_range_loop)]
use crate::system::{SystemState, VlasovMaxwell};

/// Rigorous per-cell sup bound of a configuration-space expansion.
fn sup_bound(coeffs: &[f64], sups: &[f64]) -> f64 {
    coeffs.iter().zip(sups).map(|(c, s)| c.abs() * s).sum()
}

/// Suggest a stable `dt` for the current state.
pub fn suggest_dt(system: &VlasovMaxwell, state: &SystemState, cfl: f64) -> f64 {
    let k = &system.kernels;
    let (cdim, vdim) = (k.layout.cdim, k.layout.vdim);
    let p = k.phase_basis.poly_order() as f64;
    let fac = 2.0 * p + 1.0;
    let grid = &system.grid;
    let nc = k.nc();

    // Field sup bounds over the whole domain.
    let sups: Vec<f64> = (0..nc).map(|l| k.conf_basis.sup_norm(l)).collect();
    let mut emax = [0.0f64; 3];
    let mut bmax = [0.0f64; 3];
    for cell in 0..grid.conf.len() {
        let u = state.em.cell(cell);
        for comp in 0..3 {
            emax[comp] = emax[comp].max(sup_bound(&u[comp * nc..(comp + 1) * nc], &sups));
            bmax[comp] = bmax[comp].max(sup_bound(&u[(3 + comp) * nc..(4 + comp) * nc], &sups));
        }
    }
    let vmax: Vec<f64> = (0..vdim)
        .map(|d| grid.vel.lower()[d].abs().max(grid.vel.upper()[d].abs()))
        .collect();

    let mut sum = 0.0;
    // Streaming: |v_d| ≤ vmax_d.
    for d in 0..cdim {
        sum += fac * vmax[d] / grid.conf.dx()[d];
    }
    // Acceleration: |α_j| ≤ max_s |q/m|_s (|E_j| + Σ cross |v_k||B_b|).
    let qm_max = system
        .species
        .iter()
        .map(|s| s.qm().abs())
        .fold(0.0f64, f64::max);
    for j in 0..vdim {
        let mut a = emax[j];
        // (v×B)_j involves the other two components.
        for k2 in 0..3 {
            if k2 != j && k2 < vdim {
                let bcomp = 3 - j - k2; // the remaining index
                a += vmax[k2] * bmax[bcomp];
            }
        }
        sum += fac * qm_max * a / grid.vel.dx()[j];
    }
    // Field solver.
    if system.evolve_field() {
        let s = system.maxwell.params.max_speed();
        for d in 0..cdim {
            sum += fac * s / grid.conf.dx()[d];
        }
    }
    // Collisional drag/diffusion stability is handled by the caller scaling
    // `cfl`; the collisionless bound dominates in the paper's regimes.
    cfl / sum.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::{maxwellian, Species};
    use crate::system::FluxKind;
    use dg_basis::BasisKind;
    use dg_grid::{Bc, CartGrid, PhaseGrid};
    use dg_kernels::{kernels_for, PhaseLayout};
    use dg_maxwell::flux::PhmParams;
    use dg_maxwell::{MaxwellDg, MaxwellFlux};

    #[test]
    fn dt_scales_with_resolution_and_cfl() {
        let build = |nx: usize| {
            let kernels = kernels_for(BasisKind::Serendipity, PhaseLayout::new(1, 1), 1);
            let conf = CartGrid::new(&[0.0], &[1.0], &[nx]);
            let vel = CartGrid::new(&[-4.0], &[4.0], &[8]);
            let grid = PhaseGrid::new(conf.clone(), vel, vec![Bc::Periodic]);
            let mx = MaxwellDg::new(
                BasisKind::Serendipity,
                conf,
                vec![Bc::Periodic],
                1,
                PhmParams::vacuum(1.0),
                MaxwellFlux::Central,
            );
            let mut sp = Species::new("e", -1.0, 1.0, &grid, kernels.np());
            sp.project_initial(&kernels, &grid, 3, &mut |_x, v| {
                maxwellian(1.0, &[0.0], 1.0, v)
            });
            VlasovMaxwell::new(kernels, grid, mx, vec![sp], FluxKind::Upwind)
        };
        let sys4 = build(4);
        let st4 = sys4.initial_state(sys4.maxwell.new_field());
        let sys8 = build(8);
        let st8 = sys8.initial_state(sys8.maxwell.new_field());
        let dt4 = suggest_dt(&sys4, &st4, 1.0);
        let dt8 = suggest_dt(&sys8, &st8, 1.0);
        assert!(dt8 < dt4, "finer grid must reduce dt");
        assert!(dt8 > 0.3 * dt4, "dt should shrink roughly linearly");
        assert!((suggest_dt(&sys4, &st4, 0.5) - 0.5 * dt4).abs() < 1e-15);
    }

    #[test]
    fn stronger_fields_reduce_dt() {
        let kernels = kernels_for(BasisKind::Serendipity, PhaseLayout::new(1, 1), 1);
        let conf = CartGrid::new(&[0.0], &[1.0], &[4]);
        let vel = CartGrid::new(&[-4.0], &[4.0], &[8]);
        let grid = PhaseGrid::new(conf.clone(), vel, vec![Bc::Periodic]);
        let mx = MaxwellDg::new(
            BasisKind::Serendipity,
            conf,
            vec![Bc::Periodic],
            1,
            PhmParams::vacuum(1.0),
            MaxwellFlux::Central,
        );
        let sp = Species::new("e", -1.0, 1.0, &grid, kernels.np());
        let sys = VlasovMaxwell::new(kernels, grid, mx, vec![sp], FluxKind::Upwind);
        let mut st = sys.initial_state(sys.maxwell.new_field());
        let dt0 = suggest_dt(&sys, &st, 1.0);
        // Large uniform E_x.
        let c0 = dg_basis::expand::const_coeff(&sys.kernels.conf_basis);
        for c in 0..sys.grid.conf.len() {
            st.em.cell_mut(c)[0] = 50.0 * c0;
        }
        let dt1 = suggest_dt(&sys, &st, 1.0);
        assert!(dt1 < dt0);
    }
}
