//! Face (trace) bases and trace maps.
//!
//! Surface integrals in the DG weak form live on `(d−1)`-dimensional cell
//! faces. Restricting a cell basis function to the face `ξ_dir = ±1` turns
//! its `P̃_{e_dir}` factor into the scalar `P̃_{e_dir}(±1)`, leaving a
//! product of Legendre polynomials in the remaining coordinates whose
//! exponent multi-index is again admissible **for the same family at the
//! same order** (all three families are closed under deleting a dimension).
//! The face basis is therefore simply the family's basis in `d−1`
//! dimensions, and the trace of any cell expansion is a sparse re-indexing:
//! exactly one face mode per cell mode.

// Stencil/loop style: index-coupled face-embedding sweeps index several arrays in lockstep;
// `needless_range_loop` rewrites would obscure that (workspace allow
// was scoped down to the modules that need it).
#![allow(clippy::needless_range_loop)]
use crate::basis::Basis;
use dg_poly::legendre::edge_value;
use dg_poly::mpoly::Exps;
use dg_poly::MAX_DIM;

/// The trace machinery for faces normal to one cell direction.
#[derive(Clone, Debug)]
pub struct FaceBasis {
    /// Normal direction in the cell's dimension numbering.
    pub dir: usize,
    /// The `(d−1)`-dimensional basis on the face. Face dimension `j`
    /// corresponds to cell dimension `j` if `j < dir`, else `j + 1`.
    pub basis: Basis,
    /// `trace[side][i] = (a, value)`: cell mode `i` restricted to the face
    /// equals `value · φ_a`. `side` 0 = lower (ξ_dir = −1), 1 = upper (+1).
    trace: [Vec<(u32, f64)>; 2],
}

impl FaceBasis {
    pub fn new(cell: &Basis, dir: usize) -> Self {
        assert!(dir < cell.ndim(), "face direction out of range");
        // For 1D cells the face basis is 0-dimensional: a single constant
        // mode on a point, with unit "integral".
        let basis = Basis::new(cell.kind(), cell.ndim() - 1, cell.poly_order());
        let mut trace = [
            Vec::with_capacity(cell.len()),
            Vec::with_capacity(cell.len()),
        ];
        for i in 0..cell.len() {
            let e = cell.exps(i);
            let fe = drop_dim(e, dir);
            let a = basis
                .find(&fe)
                .expect("family not closed under taking traces — impossible")
                as u32;
            let k = e[dir] as usize;
            trace[0].push((a, edge_value(k, -1)));
            trace[1].push((a, edge_value(k, 1)));
        }
        FaceBasis { dir, basis, trace }
    }

    /// Number of face modes.
    pub fn len(&self) -> usize {
        self.basis.len()
    }

    pub fn is_empty(&self) -> bool {
        self.basis.is_empty()
    }

    /// `(face index, trace value)` of cell mode `i` at the given side
    /// (−1 → lower face, +1 → upper face).
    #[inline]
    pub fn trace_of(&self, side: i32, i: usize) -> (usize, f64) {
        let (a, v) = self.trace[usize::from(side > 0)][i];
        (a as usize, v)
    }

    /// Number of non-zero trace entries on one side — the multiplications
    /// one [`FaceBasis::restrict`] or [`FaceBasis::lift`] actually
    /// performs. (For Legendre factors every edge value is non-zero, so
    /// this equals the cell-basis size; counted rather than assumed so the
    /// op audits stay honest under basis changes.)
    pub fn nnz(&self, side: i32) -> usize {
        self.trace[usize::from(side > 0)]
            .iter()
            .filter(|&&(_, v)| v != 0.0)
            .count()
    }

    /// Restrict a cell expansion to the face: `face[a] += Σ_i T_{ia} cell[i]`.
    /// `face` must be zeroed by the caller (allows accumulation patterns).
    #[inline]
    pub fn restrict(&self, side: i32, cell: &[f64], face: &mut [f64]) {
        let t = &self.trace[usize::from(side > 0)];
        for (i, &(a, v)) in t.iter().enumerate() {
            face[a as usize] += v * cell[i];
        }
    }

    /// Lift a face functional back to cell modes:
    /// `cell[i] += scale · T_{ia} face[a]` — the surface-integral lift
    /// `∫_face w_i|_side Ĝ dS` given `Ĝ`'s face expansion.
    #[inline]
    pub fn lift(&self, side: i32, face: &[f64], scale: f64, cell: &mut [f64]) {
        let t = &self.trace[usize::from(side > 0)];
        for (i, &(a, v)) in t.iter().enumerate() {
            cell[i] += scale * v * face[a as usize];
        }
    }
}

/// Remove dimension `dir` from a multi-index, shifting higher dims down.
pub fn drop_dim(e: &Exps, dir: usize) -> Exps {
    let mut out = [0u8; MAX_DIM];
    let mut j = 0;
    for (d, &ed) in e.iter().enumerate() {
        if d == dir {
            continue;
        }
        out[j] = ed;
        j += 1;
    }
    out
}

/// Insert a zero exponent at dimension `dir` (inverse of [`drop_dim`] for
/// indices that do not vary along `dir`).
pub fn insert_dim(e: &Exps, dir: usize, value: u8) -> Exps {
    let mut out = [0u8; MAX_DIM];
    let mut j = 0;
    for d in 0..MAX_DIM {
        if d == dir {
            out[d] = value;
        } else {
            out[d] = e[j];
            j += 1;
            if j >= MAX_DIM {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::BasisKind;

    #[test]
    fn drop_insert_roundtrip() {
        let e: Exps = [3, 1, 4, 1, 5, 0];
        for dir in 0..5 {
            let f = drop_dim(&e, dir);
            let back = insert_dim(&f, dir, e[dir]);
            assert_eq!(back, e);
        }
    }

    #[test]
    fn trace_matches_pointwise_evaluation() {
        for &kind in &[
            BasisKind::MaximalOrder,
            BasisKind::Serendipity,
            BasisKind::Tensor,
        ] {
            let cell = Basis::new(kind, 3, 2);
            for dir in 0..3 {
                let fb = FaceBasis::new(&cell, dir);
                for &side in &[-1i32, 1] {
                    // Random-ish cell expansion evaluated on the face two
                    // ways must agree.
                    let coeffs: Vec<f64> = (0..cell.len())
                        .map(|i| ((i * 37 + 11) % 17) as f64 / 7.0 - 1.0)
                        .collect();
                    let mut face = vec![0.0; fb.len()];
                    fb.restrict(side, &coeffs, &mut face);

                    let pts = [[0.3, -0.8], [-0.5, 0.5], [0.9, 0.1]];
                    for fxi in &pts {
                        let mut xi = [0.0; 3];
                        let mut j = 0;
                        for d in 0..3 {
                            if d == dir {
                                xi[d] = side as f64;
                            } else {
                                xi[d] = fxi[j];
                                j += 1;
                            }
                        }
                        let direct = cell.eval_expansion(&coeffs, &xi);
                        let via_face = fb.basis.eval_expansion(&face, fxi);
                        assert!(
                            (direct - via_face).abs() < 1e-12,
                            "{kind:?} dir {dir} side {side}: {direct} vs {via_face}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lift_is_transpose_of_restrict() {
        let cell = Basis::new(BasisKind::Serendipity, 2, 2);
        let fb = FaceBasis::new(&cell, 0);
        // ⟨restrict(c), g⟩_face = ⟨c, lift(g)⟩_cell for all c, g.
        for side in [-1, 1] {
            for ci in 0..cell.len() {
                for a in 0..fb.len() {
                    let mut c = vec![0.0; cell.len()];
                    c[ci] = 1.0;
                    let mut f = vec![0.0; fb.len()];
                    fb.restrict(side, &c, &mut f);
                    let lhs = f[a];

                    let mut g = vec![0.0; fb.len()];
                    g[a] = 1.0;
                    let mut lifted = vec![0.0; cell.len()];
                    fb.lift(side, &g, 1.0, &mut lifted);
                    let rhs = lifted[ci];
                    assert!((lhs - rhs).abs() < 1e-14);
                }
            }
        }
    }
}
