//! Reflection parities of modal basis functions.
//!
//! Every mode of the modal families is a product of 1D Legendre
//! polynomials, and `P̃_k(−ξ) = (−1)^k P̃_k(ξ)`, so reflecting any subset of
//! reference coordinates maps each mode to **itself** up to a sign — the
//! admissible exponent sets are closed under parity. This is what makes
//! ghost-state synthesis for mirror-type boundary conditions a pure
//! sign-flip on the coefficient vector (no re-projection, no quadrature):
//!
//! * an *even* (copy/open) ghost mirrors the cell in the wall-normal
//!   reference coordinate (`dims = [d]`), making the ghost trace equal to
//!   the interior trace;
//! * a *specular-reflection* ghost additionally negates the paired
//!   velocity coordinate (`dims = [d, cdim + d]`) — the velocity-parity
//!   map of the face basis used by `Bc::Reflect`;
//! * a perfectly-conducting-wall EM ghost combines the spatial mirror with
//!   per-component sign flips (tangential **E** and normal **B** odd).

use crate::basis::Basis;

/// Sign of each basis mode under the reflection `ξ_d → −ξ_d` for every `d`
/// in `dims`: `signs[l] = (−1)^{Σ_d e_l[d]}`.
///
/// Reflecting an expansion is `g_l = signs[l] · f_l`; the table is an
/// involution (`signs[l]² = 1`) and leaves mode 0 — and hence the cell
/// mean — untouched.
pub fn reflection_signs(basis: &Basis, dims: &[usize]) -> Vec<f64> {
    (0..basis.len())
        .map(|l| {
            let e = basis.exps(l);
            let odd: u32 = dims.iter().map(|&d| u32::from(e[d] % 2 == 1)).sum();
            if odd.is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::BasisKind;

    #[test]
    fn signs_match_pointwise_reflection() {
        for &kind in &[
            BasisKind::MaximalOrder,
            BasisKind::Serendipity,
            BasisKind::Tensor,
        ] {
            let b = Basis::new(kind, 3, 2);
            for dims in [vec![0], vec![2], vec![0, 1], vec![0, 1, 2]] {
                let signs = reflection_signs(&b, &dims);
                let coeffs: Vec<f64> = (0..b.len()).map(|i| (i as f64 * 0.7).sin()).collect();
                let reflected: Vec<f64> = coeffs.iter().zip(&signs).map(|(c, s)| c * s).collect();
                for &pt in &[[0.3, -0.5, 0.8], [-0.9, 0.1, 0.2]] {
                    let mut mirrored = pt;
                    for &d in &dims {
                        mirrored[d] = -mirrored[d];
                    }
                    let direct = b.eval_expansion(&coeffs, &mirrored);
                    let via_signs = b.eval_expansion(&reflected, &pt);
                    assert!(
                        (direct - via_signs).abs() < 1e-13,
                        "{kind:?} dims {dims:?}: {direct} vs {via_signs}"
                    );
                }
            }
        }
    }

    #[test]
    fn reflection_is_an_involution_and_fixes_the_mean() {
        let b = Basis::new(BasisKind::Serendipity, 4, 2);
        let signs = reflection_signs(&b, &[1, 3]);
        assert_eq!(signs[0], 1.0, "mode 0 is parity-even");
        for s in &signs {
            assert_eq!(s * s, 1.0);
        }
    }
}
