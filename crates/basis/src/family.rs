//! Basis family selection rules on exponent multi-indices.

// Stencil/loop style: index-coupled exponent sweeps index several arrays in lockstep;
// `needless_range_loop` rewrites would obscure that (workspace allow
// was scoped down to the modules that need it).
#![allow(clippy::needless_range_loop)]
use dg_poly::mpoly::Exps;

/// The three modal families compared throughout the paper (Fig. 2 colours:
/// black = maximal-order, blue = Serendipity, red = tensor).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BasisKind {
    /// Total degree ≤ p. Fewest DOFs, but the phase-space flux projection
    /// truncates products like `v · B(x)` at total degree p.
    MaximalOrder,
    /// Superlinear degree ≤ p (Arnold–Awanou). Gkeyll's workhorse: close to
    /// maximal-order cost while keeping all multilinear couplings, so the
    /// Vlasov acceleration `q/m (E + v × B)` projects without truncation.
    Serendipity,
    /// Full tensor product, max per-dimension degree ≤ p. Most DOFs; used to
    /// show (Fig. 2) that the modal algorithm's cost scales with `Np` only,
    /// independent of family.
    Tensor,
}

impl BasisKind {
    /// Is the monomial exponent multi-index a member of the family's space?
    pub fn admits(&self, exps: &Exps, ndim: usize, p: usize) -> bool {
        match self {
            BasisKind::MaximalOrder => exps[..ndim].iter().map(|&e| e as usize).sum::<usize>() <= p,
            BasisKind::Serendipity => superlinear_degree(exps, ndim) <= p,
            BasisKind::Tensor => exps[..ndim].iter().all(|&e| (e as usize) <= p),
        }
    }

    /// A per-dimension exponent cap that contains every admissible index —
    /// used to bound enumeration loops.
    pub fn max_exponent(&self, p: usize) -> usize {
        p
    }

    /// Short machine-readable name used in reports and codegen.
    pub fn tag(&self) -> &'static str {
        match self {
            BasisKind::MaximalOrder => "max",
            BasisKind::Serendipity => "ser",
            BasisKind::Tensor => "tensor",
        }
    }
}

impl std::fmt::Display for BasisKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BasisKind::MaximalOrder => "maximal-order",
            BasisKind::Serendipity => "Serendipity",
            BasisKind::Tensor => "tensor",
        };
        f.write_str(s)
    }
}

/// Arnold–Awanou superlinear degree: the total degree counting only
/// variables that enter *superlinearly* (exponent ≥ 2). Multilinear factors
/// are free; e.g. `sdeg(x²yz) = 2`, `sdeg(xyz) = 0`, `sdeg(x²y²) = 4`.
pub fn superlinear_degree(exps: &Exps, ndim: usize) -> usize {
    exps[..ndim]
        .iter()
        .map(|&e| if e >= 2 { e as usize } else { 0 })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: &[u8]) -> Exps {
        let mut out = [0u8; dg_poly::MAX_DIM];
        out[..v.len()].copy_from_slice(v);
        out
    }

    #[test]
    fn superlinear_degree_examples() {
        assert_eq!(superlinear_degree(&e(&[2, 1, 1]), 3), 2);
        assert_eq!(superlinear_degree(&e(&[1, 1, 1]), 3), 0);
        assert_eq!(superlinear_degree(&e(&[2, 2]), 2), 4);
        assert_eq!(superlinear_degree(&e(&[3, 0]), 2), 3);
        assert_eq!(superlinear_degree(&e(&[0, 0]), 2), 0);
    }

    #[test]
    fn serendipity_p2_quad_is_the_8_node_element() {
        // In 2D, p=2 Serendipity = classic 8-node quad: all of
        // {1,x,y,xy,x²,y²,x²y,xy²} but not x²y².
        let k = BasisKind::Serendipity;
        assert!(k.admits(&e(&[2, 1]), 2, 2));
        assert!(k.admits(&e(&[1, 2]), 2, 2));
        assert!(!k.admits(&e(&[2, 2]), 2, 2));
    }

    #[test]
    fn p1_serendipity_equals_p1_tensor() {
        // The paper's 6D p=1 runs use Np = 2⁶ = 64: Serendipity and tensor
        // coincide at p = 1.
        for bits in 0..64u32 {
            let mut v = [0u8; dg_poly::MAX_DIM];
            for d in 0..6 {
                v[d] = ((bits >> d) & 1) as u8;
            }
            assert_eq!(
                BasisKind::Serendipity.admits(&v, 6, 1),
                BasisKind::Tensor.admits(&v, 6, 1)
            );
        }
    }

    #[test]
    fn maximal_order_is_subset_of_serendipity_is_subset_of_tensor() {
        let p = 2;
        let ndim = 3;
        for a in 0..=3u8 {
            for b in 0..=3u8 {
                for c in 0..=3u8 {
                    let v = e(&[a, b, c]);
                    if BasisKind::MaximalOrder.admits(&v, ndim, p) {
                        assert!(BasisKind::Serendipity.admits(&v, ndim, p));
                    }
                    if BasisKind::Serendipity.admits(&v, ndim, p) {
                        assert!(BasisKind::Tensor.admits(&v, ndim, p));
                    }
                }
            }
        }
    }
}
