//! Quadrature projection of analytic functions onto the modal basis.
//!
//! Used once per simulation to set initial conditions (as in Gkeyll). The
//! *update loop* never calls this — the scheme is quadrature-free.

use crate::basis::Basis;
use dg_poly::quad::TensorGauss;

/// L2-project `f(z)` (physical coordinates) onto the basis on the cell with
/// the given `center`/`dx`: `out_i = ∫_ref f(z(ξ)) w_i(ξ) dξ`, so that the
/// stored DG expansion is `f_h(z) = Σ_i out_i w_i(ξ(z))`.
///
/// `npts` Gauss points per dimension; exact for integrands of polynomial
/// degree `2·npts − 1` per dimension.
pub fn project_cell(
    basis: &Basis,
    npts: usize,
    center: &[f64],
    dx: &[f64],
    f: &mut impl FnMut(&[f64]) -> f64,
    out: &mut [f64],
) {
    let ndim = basis.ndim();
    let np = basis.len();
    out[..np].fill(0.0);
    let mut xi = vec![0.0; ndim];
    let mut z = vec![0.0; ndim];
    let mut scratch = vec![0.0; ndim * (basis.poly_order() + 1)];
    let mut wvals = vec![0.0; np];
    let mut tg = TensorGauss::new(npts, ndim);
    while let Some(w) = tg.next_point(&mut xi) {
        for d in 0..ndim {
            z[d] = center[d] + 0.5 * dx[d] * xi[d];
        }
        let fv = f(&z);
        basis.eval_all_with(&xi, &mut scratch, &mut wvals);
        for i in 0..np {
            out[i] += w * fv * wvals[i];
        }
    }
}

/// The cell average of a modal expansion: the constant mode carries the
/// mean through `f̄ = f_0 · w_0 = f_0 · 2^{-d/2}`.
pub fn cell_average(basis: &Basis, coeffs: &[f64]) -> f64 {
    coeffs[0] * (2.0f64).powi(-(basis.ndim() as i32)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::BasisKind;

    #[test]
    fn projection_reproduces_polynomials_exactly() {
        // A quadratic in the Serendipity space projects exactly and
        // evaluates back to itself.
        let b = Basis::new(BasisKind::Serendipity, 2, 2);
        let center = [1.0, -2.0];
        let dx = [0.5, 2.0];
        let mut f = |z: &[f64]| 1.0 + 0.3 * z[0] - 0.7 * z[1] + 0.2 * z[0] * z[1] + z[1] * z[1];
        let mut coeffs = vec![0.0; b.len()];
        project_cell(&b, 3, &center, &dx, &mut f, &mut coeffs);
        for &(x, y) in &[(0.9, -2.9), (1.2, -1.1), (1.0, -2.0)] {
            let xi = [
                (x - center[0]) / (0.5 * dx[0]),
                (y - center[1]) / (0.5 * dx[1]),
            ];
            let got = b.eval_expansion(&coeffs, &xi);
            let want = f(&[x, y]);
            assert!((got - want).abs() < 1e-12, "at ({x},{y}): {got} vs {want}");
        }
    }

    #[test]
    fn cell_average_of_projection_matches_mean() {
        let b = Basis::new(BasisKind::Tensor, 1, 2);
        let mut f = |z: &[f64]| 3.0 + z[0]; // mean over cell = 3 + center
        let mut coeffs = vec![0.0; b.len()];
        project_cell(&b, 4, &[2.0], &[0.8], &mut f, &mut coeffs);
        assert!((cell_average(&b, &coeffs) - 5.0).abs() < 1e-13);
    }

    #[test]
    fn projection_is_l2_optimal() {
        // Projection residual of a non-member function is orthogonal to the
        // basis: re-projecting the evaluated expansion changes nothing.
        let b = Basis::new(BasisKind::MaximalOrder, 1, 2);
        let mut f = |z: &[f64]| (z[0]).sin();
        let mut c1 = vec![0.0; b.len()];
        project_cell(&b, 8, &[0.3], &[1.0], &mut f, &mut c1);
        let mut g = |z: &[f64]| {
            let xi = [(z[0] - 0.3) / 0.5];
            b.eval_expansion(&c1, &xi)
        };
        let mut c2 = vec![0.0; b.len()];
        project_cell(&b, 8, &[0.3], &[1.0], &mut g, &mut c2);
        for i in 0..b.len() {
            assert!((c1[i] - c2[i]).abs() < 1e-12);
        }
    }
}
