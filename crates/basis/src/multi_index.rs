//! Enumeration and ordering of exponent multi-indices for a basis family.

use crate::family::BasisKind;
use dg_poly::mpoly::Exps;
use dg_poly::MAX_DIM;

/// Enumerate all admissible multi-indices for `(kind, ndim, p)` in a
/// deterministic order: ascending total degree, then lexicographic. The
/// first index is always the constant mode — relied upon throughout (cell
/// averages live in coefficient 0).
pub fn enumerate(kind: BasisKind, ndim: usize, p: usize) -> Vec<Exps> {
    // ndim = 0 is the face basis of a 1D cell: a single constant mode on a
    // point (all surface machinery then degenerates gracefully).
    assert!(ndim <= MAX_DIM, "ndim out of range");
    assert!(p >= 1, "modal families are defined here for p ≥ 1");
    let cap = kind.max_exponent(p) as u8;
    let mut out = Vec::new();
    let mut cur = [0u8; MAX_DIM];
    walk(&mut cur, 0, ndim, cap, &mut |e| {
        if kind.admits(e, ndim, p) {
            out.push(*e);
        }
    });
    out.sort_by_key(|e| {
        let total: usize = e[..ndim].iter().map(|&x| x as usize).sum();
        (total, *e)
    });
    debug_assert_eq!(out[0], [0u8; MAX_DIM]);
    out
}

fn walk(cur: &mut Exps, d: usize, ndim: usize, cap: u8, f: &mut impl FnMut(&Exps)) {
    if d == ndim {
        f(cur);
        return;
    }
    for e in 0..=cap {
        cur[d] = e;
        walk(cur, d + 1, ndim, cap, f);
    }
    cur[d] = 0;
}

/// Binomial coefficient, used for the maximal-order count `C(p+d, d)`.
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc as usize
}

/// Closed-form dimension of the Serendipity space (Arnold–Awanou eq. 2.1):
/// `Np = Σ_{j=0}^{min(d, ⌊p/2⌋)} 2^{d−j} C(d, j) C(p−j, j)`.
pub fn serendipity_dim(ndim: usize, p: usize) -> usize {
    let mut acc = 0usize;
    for j in 0..=ndim.min(p / 2) {
        acc += (1usize << (ndim - j)) * binomial(ndim, j) * binomial(p - j, j);
    }
    acc
}

/// Expected basis size for any family (cross-checked against enumeration in
/// tests; used by callers for pre-allocation).
pub fn expected_len(kind: BasisKind, ndim: usize, p: usize) -> usize {
    match kind {
        BasisKind::Tensor => (p + 1).pow(ndim as u32),
        BasisKind::MaximalOrder => binomial(p + ndim, ndim),
        BasisKind::Serendipity => serendipity_dim(ndim, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dof_counts() {
        // Table I: p=2 Serendipity, 2X3V (d=5) → 112 DOF per cell.
        assert_eq!(enumerate(BasisKind::Serendipity, 5, 2).len(), 112);
        // §IV: p=1, 3X3V (d=6) → Np = 64.
        assert_eq!(enumerate(BasisKind::Serendipity, 6, 1).len(), 64);
        assert_eq!(enumerate(BasisKind::Tensor, 6, 1).len(), 64);
        // Fig. 1: 1X2V p=1 tensor → 8 basis functions.
        assert_eq!(enumerate(BasisKind::Tensor, 3, 1).len(), 8);
        // §IV nodal comparison: p=4 maximal-order 1X3V (d=4) → C(8,4) = 70…
        // (the paper's nodal Np=136 is a *nodal Serendipity* count; our modal
        // maximal-order p=4 in 4D is 70, tensor is 625).
        assert_eq!(enumerate(BasisKind::MaximalOrder, 4, 4).len(), 70);
    }

    #[test]
    fn counts_match_closed_forms() {
        for &kind in &[
            BasisKind::MaximalOrder,
            BasisKind::Serendipity,
            BasisKind::Tensor,
        ] {
            for ndim in 1..=4 {
                for p in 1..=3 {
                    assert_eq!(
                        enumerate(kind, ndim, p).len(),
                        expected_len(kind, ndim, p),
                        "{kind:?} d={ndim} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_mode_is_constant_and_order_is_stable() {
        let b = enumerate(BasisKind::Serendipity, 3, 2);
        assert_eq!(b[0], [0u8; MAX_DIM]);
        // Linear modes come next, in dimension order.
        assert_eq!(b[1][..3], [0, 0, 1]);
        assert_eq!(b[2][..3], [0, 1, 0]);
        assert_eq!(b[3][..3], [1, 0, 0]);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for e in &b {
            assert!(seen.insert(*e));
        }
    }

    #[test]
    fn downward_closure_under_exponent_minus_two() {
        // The property that makes Legendre products a basis of the space:
        // lowering any exponent by 2 stays admissible.
        for &kind in &[
            BasisKind::MaximalOrder,
            BasisKind::Serendipity,
            BasisKind::Tensor,
        ] {
            for e in enumerate(kind, 3, 3) {
                for d in 0..3 {
                    if e[d] >= 2 {
                        let mut le = e;
                        le[d] -= 2;
                        assert!(kind.admits(&le, 3, 3));
                    }
                }
            }
        }
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(8, 4), 70);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(10, 3), 120);
    }
}
