//! The modal orthonormal basis on a reference cell.

// Stencil/loop style: index-coupled exponent/sign sweeps index several arrays in lockstep;
// `needless_range_loop` rewrites would obscure that (workspace allow
// was scoped down to the modules that need it).
#![allow(clippy::needless_range_loop)]
use crate::family::BasisKind;
use crate::multi_index;
use dg_poly::legendre::{legendre, norm_sq};
use dg_poly::mpoly::{Exps, MPoly};
use dg_poly::rational::Rational;
use std::collections::HashMap;

/// An orthonormal modal basis `{w_i}` on `[-1,1]^ndim`:
/// `w_i(ξ) = ∏_d P̃_{e_d(i)}(ξ_d)` with `∫ w_i w_j dξ = δ_ij`.
#[derive(Clone, Debug)]
pub struct Basis {
    ndim: usize,
    poly_order: usize,
    kind: BasisKind,
    exps: Vec<Exps>,
    index_of: HashMap<Exps, usize>,
}

impl Basis {
    pub fn new(kind: BasisKind, ndim: usize, poly_order: usize) -> Self {
        let exps = multi_index::enumerate(kind, ndim, poly_order);
        let index_of = exps.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        Basis {
            ndim,
            poly_order,
            kind,
            exps,
            index_of,
        }
    }

    /// Number of basis functions, `Np` in the paper.
    pub fn len(&self) -> usize {
        self.exps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exps.is_empty()
    }

    pub fn ndim(&self) -> usize {
        self.ndim
    }

    pub fn poly_order(&self) -> usize {
        self.poly_order
    }

    pub fn kind(&self) -> BasisKind {
        self.kind
    }

    /// Exponent multi-index of basis function `i`.
    pub fn exps(&self, i: usize) -> &Exps {
        &self.exps[i]
    }

    pub fn all_exps(&self) -> &[Exps] {
        &self.exps
    }

    /// Index of the basis function with the given exponents, if admissible.
    pub fn find(&self, e: &Exps) -> Option<usize> {
        self.index_of.get(e).copied()
    }

    /// Evaluate all basis functions at reference point `ξ ∈ [-1,1]^ndim`
    /// into `out` (length ≥ Np). Allocation-free; `scratch` must be at least
    /// `ndim × (p+1)` long and holds per-dimension Legendre values.
    pub fn eval_all_with(&self, xi: &[f64], scratch: &mut [f64], out: &mut [f64]) {
        let n1 = self.poly_order + 1;
        debug_assert!(scratch.len() >= self.ndim * n1);
        for d in 0..self.ndim {
            eval_legendre_1d(xi[d], &mut scratch[d * n1..(d + 1) * n1]);
        }
        for (i, e) in self.exps.iter().enumerate() {
            let mut v = 1.0;
            for d in 0..self.ndim {
                v *= scratch[d * n1 + e[d] as usize];
            }
            out[i] = v;
        }
    }

    /// Convenience allocating wrapper around [`Basis::eval_all_with`].
    pub fn eval_all(&self, xi: &[f64]) -> Vec<f64> {
        let mut scratch = vec![0.0; self.ndim * (self.poly_order + 1)];
        let mut out = vec![0.0; self.len()];
        self.eval_all_with(xi, &mut scratch, &mut out);
        out
    }

    /// Evaluate the expansion `Σ_i coeffs[i] w_i(ξ)`.
    pub fn eval_expansion(&self, coeffs: &[f64], xi: &[f64]) -> f64 {
        let vals = self.eval_all(xi);
        coeffs.iter().zip(&vals).map(|(c, w)| c * w).sum()
    }

    /// ∂w_i/∂ξ_dir at `ξ`, all `i` (allocating; used in tests and the nodal
    /// baseline's matrix setup, never in the modal hot loop).
    pub fn eval_grad(&self, dir: usize, xi: &[f64]) -> Vec<f64> {
        let n1 = self.poly_order + 1;
        let mut vals = vec![0.0; self.ndim * n1];
        let mut dvals = vec![0.0; n1];
        for d in 0..self.ndim {
            eval_legendre_1d(xi[d], &mut vals[d * n1..(d + 1) * n1]);
        }
        eval_legendre_deriv_1d(xi[dir], &mut dvals);
        self.exps
            .iter()
            .map(|e| {
                let mut v = 1.0;
                for d in 0..self.ndim {
                    if d == dir {
                        v *= dvals[e[d] as usize];
                    } else {
                        v *= vals[d * n1 + e[d] as usize];
                    }
                }
                v
            })
            .collect()
    }

    /// The exact symbolic form of `w_i` (up to the per-index normalization
    /// √(∏ ν²), returned alongside), for kernel verification: the returned
    /// pair `(poly, nrm2)` satisfies `w_i = √(nrm2) · poly`.
    pub fn symbolic(&self, i: usize) -> (MPoly, Rational) {
        let e = &self.exps[i];
        let mut poly = MPoly::constant(Rational::ONE);
        let mut nrm2 = Rational::ONE;
        for d in 0..self.ndim {
            poly = poly.mul(&MPoly::from_poly1(&legendre(e[d] as usize), d));
            nrm2 *= norm_sq(e[d] as usize);
        }
        (poly, nrm2)
    }

    /// Sup-norm bound `‖w_i‖_∞ = ∏_d √((2 e_d + 1)/2)` (Legendre attain max
    /// modulus at ±1) — used for rigorous penalty-speed bounds.
    pub fn sup_norm(&self, i: usize) -> f64 {
        self.exps[i][..self.ndim]
            .iter()
            .map(|&e| norm_sq(e as usize).to_f64().sqrt())
            .product()
    }

    /// A human-readable label like `ser-p2-3d`.
    pub fn label(&self) -> String {
        format!("{}-p{}-{}d", self.kind.tag(), self.poly_order, self.ndim)
    }
}

/// Fill `out[k] = P̃_k(x)` for `k = 0..out.len()` via the Legendre
/// recurrence, applying the orthonormalization on the fly.
pub fn eval_legendre_1d(x: f64, out: &mut [f64]) {
    let n = out.len();
    if n == 0 {
        return;
    }
    // Unnormalized P_k by recurrence, normalized in place.
    let mut pkm1 = 1.0;
    out[0] = std::f64::consts::FRAC_1_SQRT_2; // √(1/2)
    if n == 1 {
        return;
    }
    let mut pk = x;
    out[1] = x * (1.5f64).sqrt();
    for k in 1..n - 1 {
        let kf = k as f64;
        let pkp1 = ((2.0 * kf + 1.0) * x * pk - kf * pkm1) / (kf + 1.0);
        pkm1 = pk;
        pk = pkp1;
        out[k + 1] = pk * ((2.0 * (kf + 1.0) + 1.0) / 2.0).sqrt();
    }
}

/// Fill `out[k] = P̃_k'(x)` via `P_k' = (k x P_k − k P_{k−1})/(x²−1)` …
/// avoided at the endpoints by using the stable recurrence
/// `P'_{k+1} = P'_{k−1} + (2k+1) P_k`.
pub fn eval_legendre_deriv_1d(x: f64, out: &mut [f64]) {
    let n = out.len();
    if n == 0 {
        return;
    }
    // Unnormalized values and derivative recurrences.
    let mut p = vec![0.0; n];
    let mut dp = vec![0.0; n];
    p[0] = 1.0;
    if n > 1 {
        p[1] = x;
        dp[1] = 1.0;
    }
    for k in 1..n.saturating_sub(1) {
        let kf = k as f64;
        p[k + 1] = ((2.0 * kf + 1.0) * x * p[k] - kf * p[k - 1]) / (kf + 1.0);
        dp[k + 1] = if k >= 1 { dp[k - 1] } else { 0.0 } + (2.0 * kf + 1.0) * p[k];
    }
    for k in 0..n {
        out[k] = dp[k] * ((2.0 * k as f64 + 1.0) / 2.0).sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_poly::quad::TensorGauss;
    use proptest::prelude::*;

    #[test]
    fn orthonormal_under_quadrature() {
        for &kind in &[
            BasisKind::MaximalOrder,
            BasisKind::Serendipity,
            BasisKind::Tensor,
        ] {
            let b = Basis::new(kind, 2, 2);
            let np = b.len();
            let mut gram = vec![0.0; np * np];
            let mut tg = TensorGauss::new(4, 2);
            let mut xi = [0.0; 2];
            while let Some(w) = tg.next_point(&mut xi) {
                let vals = b.eval_all(&xi);
                for i in 0..np {
                    for j in 0..np {
                        gram[i * np + j] += w * vals[i] * vals[j];
                    }
                }
            }
            for i in 0..np {
                for j in 0..np {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (gram[i * np + j] - want).abs() < 1e-12,
                        "{kind:?} gram[{i}][{j}] = {}",
                        gram[i * np + j]
                    );
                }
            }
        }
    }

    #[test]
    fn symbolic_matches_numeric() {
        let b = Basis::new(BasisKind::Serendipity, 3, 2);
        let pts = [[0.3, -0.7, 0.1], [1.0, 1.0, -1.0], [-0.25, 0.5, 0.75]];
        for i in 0..b.len() {
            let (poly, nrm2) = b.symbolic(i);
            let s = nrm2.to_f64().sqrt();
            for xi in &pts {
                let numeric = b.eval_all(xi)[i];
                let symbolic = s * poly.eval_f64(xi);
                assert!(
                    (numeric - symbolic).abs() < 1e-12,
                    "basis {i} at {xi:?}: {numeric} vs {symbolic}"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let b = Basis::new(BasisKind::Tensor, 2, 3);
        let xi = [0.37, -0.58];
        let h = 1e-6;
        for dir in 0..2 {
            let grads = b.eval_grad(dir, &xi);
            let mut xp = xi;
            let mut xm = xi;
            xp[dir] += h;
            xm[dir] -= h;
            let vp = b.eval_all(&xp);
            let vm = b.eval_all(&xm);
            for i in 0..b.len() {
                let fd = (vp[i] - vm[i]) / (2.0 * h);
                assert!(
                    (grads[i] - fd).abs() < 1e-5 * (1.0 + grads[i].abs()),
                    "dir {dir} basis {i}: {} vs {fd}",
                    grads[i]
                );
            }
        }
    }

    #[test]
    fn sup_norm_is_attained_at_corner() {
        let b = Basis::new(BasisKind::Tensor, 2, 2);
        let corner = b.eval_all(&[1.0, 1.0]);
        for i in 0..b.len() {
            assert!((b.sup_norm(i) - corner[i].abs()).abs() < 1e-13);
        }
    }

    proptest! {
        #[test]
        fn expansion_eval_linear(x in -1.0f64..1.0, y in -1.0f64..1.0) {
            // Expanding the function 1 (coefficients from expand helpers is
            // tested elsewhere); here: evaluating e_i expansion returns w_i.
            let b = Basis::new(BasisKind::Serendipity, 2, 2);
            let vals = b.eval_all(&[x, y]);
            for i in 0..b.len() {
                let mut c = vec![0.0; b.len()];
                c[i] = 1.0;
                prop_assert!((b.eval_expansion(&c, &[x, y]) - vals[i]).abs() < 1e-13);
            }
        }
    }
}
