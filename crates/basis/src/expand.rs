//! Exact expansions of simple functions in an orthonormal modal basis.
//!
//! The streaming part of the phase-space flux is `α = v_d = w_d + (Δ_d/2)ξ_d`
//! — an affine function of one reference coordinate. Its modal expansion has
//! exactly two non-zero coefficients, which is what lets the streaming
//! kernels collapse to two sparse matrices (see `dg-kernels::volume`). The
//! coefficients below are closed-form:
//!
//! * `⟨1, w_0⟩ = 2^{d/2}` (only the constant mode sees a constant);
//! * `⟨ξ_k, w_{e_k}⟩ = √(2/3) · 2^{(d−1)/2}` (only the linear-in-`ξ_k` mode).

use crate::basis::Basis;
use dg_poly::MAX_DIM;

/// Coefficient of the constant function `1` on mode 0 (all other modes 0).
pub fn const_coeff(basis: &Basis) -> f64 {
    debug_assert_eq!(basis.exps(0), &[0u8; MAX_DIM]);
    (2.0f64).powi(basis.ndim() as i32).sqrt()
}

/// `(mode index, coefficient)` of the coordinate `ξ_dim`; `None` only if the
/// basis lacks the linear mode (impossible for p ≥ 1).
pub fn linear_coeff(basis: &Basis, dim: usize) -> Option<(usize, f64)> {
    let mut e = [0u8; MAX_DIM];
    e[dim] = 1;
    let idx = basis.find(&e)?;
    let c = (2.0f64 / 3.0).sqrt() * (2.0f64).powi(basis.ndim() as i32 - 1).sqrt();
    Some((idx, c))
}

/// Expansion of the affine function `a + b ξ_dim` into `out` (zeroed first).
pub fn affine(basis: &Basis, dim: usize, a: f64, b: f64, out: &mut [f64]) {
    out.fill(0.0);
    out[0] = a * const_coeff(basis);
    let (idx, c) = linear_coeff(basis, dim).expect("p ≥ 1 basis has linear modes");
    out[idx] += b * c;
}

/// The physical coordinate `z_dim = center + (dx/2) ξ_dim` as a modal
/// expansion — e.g. the velocity coordinate `v` appearing in the streaming
/// flux and in the drag term of the LBO collision operator.
pub fn coordinate(basis: &Basis, dim: usize, center: f64, dx: f64, out: &mut [f64]) {
    affine(basis, dim, center, 0.5 * dx, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::BasisKind;

    #[test]
    fn constant_expansion_evaluates_to_one() {
        for ndim in 1..=4 {
            let b = Basis::new(BasisKind::Serendipity, ndim, 2);
            let mut c = vec![0.0; b.len()];
            c[0] = const_coeff(&b);
            let xi: Vec<f64> = (0..ndim).map(|d| 0.1 * d as f64 - 0.3).collect();
            assert!((b.eval_expansion(&c, &xi) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn coordinate_expansion_evaluates_to_coordinate() {
        let b = Basis::new(BasisKind::Tensor, 3, 2);
        let mut c = vec![0.0; b.len()];
        coordinate(&b, 1, 2.5, 0.4, &mut c);
        for &xi1 in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
            let xi = [0.2, xi1, -0.6];
            let want = 2.5 + 0.2 * xi1;
            assert!((b.eval_expansion(&c, &xi) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn affine_is_sparse() {
        let b = Basis::new(BasisKind::MaximalOrder, 4, 3);
        let mut c = vec![0.0; b.len()];
        affine(&b, 2, 1.0, 2.0, &mut c);
        let nnz = c.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nnz, 2);
    }
}
