//! # dg-basis — modal orthonormal bases on the reference cube
//!
//! The paper's efficiency hinges on choosing a **modal, orthonormal**
//! polynomial basis so that (a) the DG mass matrix is the identity
//! (matrix-free), and (b) the volume tensor `C_lmn = ∫ ∂w_l w_m w_n` is
//! sparse (few FLOPs). On Cartesian cells all three families used by
//! Gkeyll — maximal-order, Serendipity, and tensor-product — are spanned by
//! products of 1D orthonormal Legendre polynomials `P̃_k`, one factor per
//! dimension, selected by a family-specific rule on the exponent
//! multi-index:
//!
//! * **tensor**: `max_d k_d ≤ p`, `Np = (p+1)^d`;
//! * **maximal-order**: `Σ_d k_d ≤ p`, `Np = C(p+d, d)`;
//! * **Serendipity** (Arnold & Awanou 2011): superlinear degree ≤ p, where
//!   the superlinear degree of a monomial ignores exponents equal to one.
//!
//! Because each admissible set is closed under lowering any single exponent
//! by 2 (the support of `P_k` in the monomial basis), the Legendre products
//! with admissible exponents form an *orthonormal basis of exactly the
//! family's polynomial space* — no Gram–Schmidt needed and no mass matrix to
//! invert, which is the paper's footnote 2.
//!
//! Paper cross-checks encoded as tests here: `Np = 112` for p=2
//! Serendipity in 5D (Table I), `Np = 64` for p=1 in 6D (§IV weak scaling),
//! and `Np = 8` for the 1X2V p=1 tensor kernel of Fig. 1.

pub mod basis;
pub mod expand;
pub mod face;
pub mod family;
pub mod multi_index;
pub mod parity;
pub mod project;

pub use basis::Basis;
pub use face::FaceBasis;
pub use family::BasisKind;

pub use dg_poly::mpoly::Exps;
pub use dg_poly::MAX_DIM;
