//! The quadrature-pipeline Vlasov operator.
//!
//! Identical discrete operator to `dg_core::vlasov::VlasovOp` (same fluxes,
//! same `α` construction, same penalty speeds), evaluated through dense
//! interpolation/projection matrices and pointwise products — the cost
//! model of the alias-free *nodal* scheme in the paper's Table I.

use crate::quad_eval::QuadEval;
use dg_core::vlasov::FluxKind;
use dg_grid::{DgField, PhaseGrid};
use dg_kernels::accel::VelGeom;
use dg_kernels::PhaseKernels;
use std::ops::Range;
use std::sync::Arc;

/// Scratch buffers for the dense pipeline.
#[derive(Clone, Debug, Default)]
pub struct NodalWorkspace {
    alpha: Vec<f64>,
    alpha_face: Vec<f64>,
    f_q: Vec<f64>,
    a_q: Vec<f64>,
    prod_q: Vec<f64>,
    fl_q: Vec<f64>,
    fr_q: Vec<f64>,
    af_q: Vec<f64>,
    ghat_q: Vec<f64>,
}

/// The nodal (quadrature) evaluator.
pub struct NodalVlasov {
    pub kernels: Arc<PhaseKernels>,
    pub grid: PhaseGrid,
    pub flux: FluxKind,
    pub quad: QuadEval,
    vel_centers: Vec<[f64; 3]>,
    dv: [f64; 3],
}

impl NodalVlasov {
    /// `nq_per_dim` Gauss points per dimension: use
    /// [`crate::alias_free_points`] for the exact baseline or
    /// [`crate::aliased_points`] for the under-integrated variant.
    pub fn new(
        kernels: Arc<PhaseKernels>,
        grid: PhaseGrid,
        flux: FluxKind,
        nq_per_dim: usize,
    ) -> Self {
        let face_bases: Vec<&dg_basis::Basis> = kernels
            .surfaces
            .iter()
            .map(|s| &s.kernel.face.basis)
            .collect();
        let quad = QuadEval::new(&kernels.phase_basis, &face_bases, nq_per_dim);
        let vdim = grid.vdim();
        let mut vel_centers = Vec::with_capacity(grid.vel.len());
        let mut vidx = vec![0usize; vdim];
        for vlin in 0..grid.vel.len() {
            grid.vel.delinearize(vlin, &mut vidx);
            let mut c = [0.0; 3];
            for d in 0..vdim {
                c[d] = grid.vel.center(d, vidx[d]);
            }
            vel_centers.push(c);
        }
        let mut dv = [1.0; 3];
        dv[..vdim].copy_from_slice(grid.vel.dx());
        NodalVlasov {
            kernels,
            grid,
            flux,
            quad,
            vel_centers,
            dv,
        }
    }

    pub fn workspace(&self) -> NodalWorkspace {
        let nq = self.quad.nq();
        let nqf = self
            .quad
            .faces
            .iter()
            .map(|f| f.weights.len())
            .max()
            .unwrap_or(1);
        NodalWorkspace {
            alpha: vec![0.0; self.kernels.np()],
            alpha_face: vec![0.0; self.kernels.max_face_len()],
            f_q: vec![0.0; nq],
            a_q: vec![0.0; nq],
            prod_q: vec![0.0; nq],
            fl_q: vec![0.0; nqf],
            fr_q: vec![0.0; nqf],
            af_q: vec![0.0; nqf],
            ghat_q: vec![0.0; nqf],
        }
    }

    /// Volume terms via interpolate → pointwise multiply → project.
    pub fn volume(
        &self,
        qm: f64,
        f: &DgField,
        em: &DgField,
        out: &mut DgField,
        ws: &mut NodalWorkspace,
        conf_range: Range<usize>,
    ) {
        let k = &*self.kernels;
        let (cdim, vdim) = (k.layout.cdim, k.layout.vdim);
        let nv = self.grid.vel.len();
        let nc = k.nc();
        let cdx = self.grid.conf.dx();
        let vdx = self.grid.vel.dx();
        let nq = self.quad.nq();
        for clin in conf_range {
            let em_cell = em.cell(clin);
            let e = &em_cell[..3 * nc];
            let b = [
                &em_cell[3 * nc..4 * nc],
                &em_cell[4 * nc..5 * nc],
                &em_cell[5 * nc..6 * nc],
            ];
            for vlin in 0..nv {
                let cell = clin * nv + vlin;
                let fc = f.cell(cell);
                let vc = &self.vel_centers[vlin];
                // Dense interpolation of f (once per cell).
                self.quad.phi.matvec(fc, &mut ws.f_q);
                for dir in 0..cdim + vdim {
                    // Modal α (same construction as the modal path), then
                    // dense interpolation.
                    let scale = if dir < cdim {
                        dg_basis::expand::affine(
                            &k.phase_basis,
                            cdim + dir,
                            vc[dir],
                            0.5 * vdx[dir],
                            &mut ws.alpha,
                        );
                        2.0 / cdx[dir]
                    } else {
                        let j = dir - cdim;
                        k.cell_accel[j].project(
                            qm,
                            &e[j * nc..(j + 1) * nc],
                            b,
                            VelGeom {
                                v_c: &vc[..vdim],
                                dv: &self.dv[..vdim],
                            },
                            &mut ws.alpha,
                        );
                        2.0 / vdx[j]
                    };
                    self.quad.phi.matvec(&ws.alpha, &mut ws.a_q);
                    for q in 0..nq {
                        ws.prod_q[q] = self.quad.weights[q] * ws.a_q[q] * ws.f_q[q] * scale;
                    }
                    self.quad.dphi[dir].matvec_t_acc(&ws.prod_q, out.cell_mut(cell));
                }
            }
        }
    }

    /// One configuration-direction face, dense pipeline (cf.
    /// `VlasovOp::surface_config_face`).
    #[allow(clippy::too_many_arguments)]
    pub fn surface_config_face(
        &self,
        d: usize,
        f: &DgField,
        out: &mut DgField,
        ws: &mut NodalWorkspace,
        clo: usize,
        chi: usize,
    ) {
        let k = &*self.kernels;
        let nv = self.grid.vel.len();
        let vdx = self.grid.vel.dx();
        let scale = 2.0 / self.grid.conf.dx()[d];
        let fq = &self.quad.faces[d];
        let nf = k.surfaces[d].kernel.face.len();
        let nqf = fq.weights.len();
        let central = self.flux == FluxKind::Central;
        for vlin in 0..nv {
            let vc = self.vel_centers[vlin][d];
            let lam = k.stream_face_alpha(d, vc, vdx[d], &mut ws.alpha_face[..nf]);
            let lam = if central { 0.0 } else { lam };
            let lo_cell = clo * nv + vlin;
            let hi_cell = chi * nv + vlin;
            fq.phi_face.matvec(&ws.alpha_face[..nf], &mut ws.af_q);
            fq.trace_hi.matvec(f.cell(lo_cell), &mut ws.fl_q);
            fq.trace_lo.matvec(f.cell(hi_cell), &mut ws.fr_q);
            for q in 0..nqf {
                ws.ghat_q[q] = fq.weights[q]
                    * (0.5 * ws.af_q[q] * (ws.fl_q[q] + ws.fr_q[q])
                        - 0.5 * lam * (ws.fr_q[q] - ws.fl_q[q]));
            }
            let (o_lo, o_hi) = out.cell_pair_mut(lo_cell, hi_cell);
            for q in 0..nqf {
                let g = ws.ghat_q[q];
                let row_hi = &fq.trace_hi.data[q * o_lo.len()..(q + 1) * o_lo.len()];
                let row_lo = &fq.trace_lo.data[q * o_hi.len()..(q + 1) * o_hi.len()];
                for l in 0..o_lo.len() {
                    o_lo[l] -= scale * g * row_hi[l];
                    o_hi[l] += scale * g * row_lo[l];
                }
            }
        }
    }

    /// Velocity-direction surfaces for configuration cells in `conf_range`.
    pub fn surface_velocity(
        &self,
        qm: f64,
        f: &DgField,
        em: &DgField,
        out: &mut DgField,
        ws: &mut NodalWorkspace,
        conf_range: Range<usize>,
    ) {
        let k = &*self.kernels;
        let (cdim, vdim) = (k.layout.cdim, k.layout.vdim);
        let nv = self.grid.vel.len();
        let nc = k.nc();
        let vdx = self.grid.vel.dx();
        let central = self.flux == FluxKind::Central;
        let mut vidx = vec![0usize; vdim];
        for clin in conf_range {
            let em_cell = em.cell(clin);
            let e = &em_cell[..3 * nc];
            let b = [
                &em_cell[3 * nc..4 * nc],
                &em_cell[4 * nc..5 * nc],
                &em_cell[5 * nc..6 * nc],
            ];
            for j in 0..vdim {
                let dir = cdim + j;
                let surf = &k.surfaces[dir];
                let proj = surf.face_accel.as_ref().expect("velocity face");
                let fq = &self.quad.faces[dir];
                let nf = surf.kernel.face.len();
                let nqf = fq.weights.len();
                let stride = self.grid.vel.stride(j);
                let n_j = self.grid.vel.cells()[j];
                let scale = 2.0 / vdx[j];
                for vlin in 0..nv {
                    self.grid.vel.delinearize(vlin, &mut vidx);
                    if vidx[j] + 1 >= n_j {
                        continue;
                    }
                    let vc = &self.vel_centers[vlin];
                    let lam = proj.project(
                        qm,
                        &e[j * nc..(j + 1) * nc],
                        b,
                        VelGeom {
                            v_c: &vc[..vdim],
                            dv: &self.dv[..vdim],
                        },
                        &mut ws.alpha_face[..nf],
                    );
                    let lam = if central { 0.0 } else { lam };
                    let lo_cell = clin * nv + vlin;
                    let hi_cell = lo_cell + stride;
                    fq.phi_face.matvec(&ws.alpha_face[..nf], &mut ws.af_q);
                    fq.trace_hi.matvec(f.cell(lo_cell), &mut ws.fl_q);
                    fq.trace_lo.matvec(f.cell(hi_cell), &mut ws.fr_q);
                    for q in 0..nqf {
                        ws.ghat_q[q] = fq.weights[q]
                            * (0.5 * ws.af_q[q] * (ws.fl_q[q] + ws.fr_q[q])
                                - 0.5 * lam * (ws.fr_q[q] - ws.fl_q[q]));
                    }
                    let (o_lo, o_hi) = out.cell_pair_mut(lo_cell, hi_cell);
                    for q in 0..nqf {
                        let g = ws.ghat_q[q];
                        let row_hi = &fq.trace_hi.data[q * o_lo.len()..(q + 1) * o_lo.len()];
                        let row_lo = &fq.trace_lo.data[q * o_hi.len()..(q + 1) * o_hi.len()];
                        for l in 0..o_lo.len() {
                            o_lo[l] -= scale * g * row_hi[l];
                            o_hi[l] += scale * g * row_lo[l];
                        }
                    }
                }
            }
        }
    }

    /// Full RHS through the dense pipeline (serial).
    pub fn accumulate_rhs(
        &self,
        qm: f64,
        f: &DgField,
        em: &DgField,
        out: &mut DgField,
        ws: &mut NodalWorkspace,
    ) {
        let nconf = self.grid.conf.len();
        self.volume(qm, f, em, out, ws, 0..nconf);
        let cdim = self.grid.cdim();
        let mut cidx = vec![0usize; cdim];
        for d in 0..cdim {
            for clin in 0..nconf {
                self.grid.conf.delinearize(clin, &mut cidx);
                let Some(nbr) = self.grid.conf_neighbor(cidx[d], d, 1) else {
                    continue;
                };
                let mut nidx = cidx.clone();
                nidx[d] = nbr;
                let nlin = self.grid.conf.linearize(&nidx);
                if nlin == clin {
                    continue; // single-cell periodic dims unsupported here
                }
                self.surface_config_face(d, f, out, ws, clin, nlin);
            }
        }
        self.surface_velocity(qm, f, em, out, ws, 0..nconf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias_free_points;
    use dg_basis::BasisKind;
    use dg_core::vlasov::{VlasovOp, VlasovWorkspace};
    use dg_grid::{Bc, CartGrid};
    use dg_kernels::{kernels_for, PhaseLayout};
    use dg_maxwell::NCOMP;
    use rand::{Rng, SeedableRng};

    fn random_setup(
        kind: BasisKind,
        cdim: usize,
        vdim: usize,
        p: usize,
        seed: u64,
    ) -> (Arc<PhaseKernels>, PhaseGrid, DgField, DgField) {
        let kernels = kernels_for(kind, PhaseLayout::new(cdim, vdim), p);
        let conf = CartGrid::new(&vec![0.0; cdim], &vec![1.0; cdim], &vec![3; cdim]);
        let vel = CartGrid::new(&vec![-4.0; vdim], &vec![4.0; vdim], &vec![4; vdim]);
        let grid = PhaseGrid::new(conf, vel, vec![Bc::Periodic; cdim]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut f = DgField::zeros(grid.len(), kernels.np());
        for x in f.as_mut_slice() {
            *x = rng.random_range(-1.0..1.0);
        }
        let mut em = DgField::zeros(grid.conf.len(), NCOMP * kernels.nc());
        for x in em.as_mut_slice() {
            *x = rng.random_range(-0.5..0.5);
        }
        (kernels, grid, f, em)
    }

    /// The central claim: nodal-with-exact-quadrature and modal evaluate
    /// the *same* discrete operator.
    #[test]
    fn nodal_equals_modal_to_roundoff() {
        for &(kind, cdim, vdim, p) in &[
            (BasisKind::Tensor, 1usize, 1usize, 1usize),
            (BasisKind::Tensor, 1, 1, 2),
            (BasisKind::Serendipity, 1, 2, 2),
            (BasisKind::MaximalOrder, 1, 1, 2),
        ] {
            let (kernels, grid, f, em) = random_setup(kind, cdim, vdim, p, 42);
            let qm = -1.3;
            let modal = VlasovOp::new(Arc::clone(&kernels), grid.clone(), FluxKind::Upwind);
            let mut out_m = DgField::zeros(f.ncells(), f.ncoeff());
            let mut ws_m = VlasovWorkspace::for_kernels(&kernels);
            modal.accumulate_rhs(qm, &f, &em, &mut out_m, &mut ws_m);

            let nodal = NodalVlasov::new(
                Arc::clone(&kernels),
                grid.clone(),
                FluxKind::Upwind,
                alias_free_points(p),
            );
            let mut out_n = DgField::zeros(f.ncells(), f.ncoeff());
            let mut ws_n = nodal.workspace();
            nodal.accumulate_rhs(qm, &f, &em, &mut out_n, &mut ws_n);

            let scale = out_m.max_abs().max(1.0);
            let mut max_diff: f64 = 0.0;
            for (a, b) in out_m.as_slice().iter().zip(out_n.as_slice()) {
                max_diff = max_diff.max((a - b).abs());
            }
            assert!(
                max_diff < 1e-10 * scale,
                "{kind:?} {cdim}x{vdim}v p={p}: modal vs nodal diff {max_diff} (scale {scale})"
            );
        }
    }

    #[test]
    fn under_integration_changes_the_operator() {
        // p = 2 needs 4 points; with 3 the nonlinear term aliases and the
        // result must differ beyond round-off.
        let (kernels, grid, f, em) = random_setup(BasisKind::Tensor, 1, 1, 2, 7);
        let qm = -1.0;
        let exact = NodalVlasov::new(Arc::clone(&kernels), grid.clone(), FluxKind::Upwind, 4);
        let aliased = NodalVlasov::new(Arc::clone(&kernels), grid.clone(), FluxKind::Upwind, 3);
        let mut out_e = DgField::zeros(f.ncells(), f.ncoeff());
        let mut out_a = DgField::zeros(f.ncells(), f.ncoeff());
        let mut ws = exact.workspace();
        exact.accumulate_rhs(qm, &f, &em, &mut out_e, &mut ws);
        let mut ws = aliased.workspace();
        aliased.accumulate_rhs(qm, &f, &em, &mut out_a, &mut ws);
        let mut diff: f64 = 0.0;
        for (a, b) in out_e.as_slice().iter().zip(out_a.as_slice()) {
            diff = diff.max((a - b).abs());
        }
        assert!(
            diff > 1e-6 * out_e.max_abs(),
            "aliasing should visibly change the operator, diff {diff}"
        );
    }
}
