//! # dg-nodal — the alias-free *nodal* (quadrature) baseline
//!
//! The paper's Table I compares its modal algorithm against the alias-free
//! nodal scheme of Juno et al. 2018: the **same discrete operator**, but
//! evaluated through the classic quadrature pipeline —
//!
//! ```text
//! interpolate f, α to Nq Gauss points  (dense Nq×Np matvecs)
//! pointwise products                   (Nq multiplies)
//! project onto ∂w_l / lift traces      (dense Np×Nq matvecs)
//! ```
//!
//! with enough points (`⌈(3p+1)/2⌉` per dimension) to integrate the
//! nonlinear term exactly. Because both pipelines evaluate the same
//! integrals exactly, **modal and nodal RHS agree to round-off** — asserted
//! in the cross-crate equivalence tests — while their costs differ by the
//! `O(Nq Np)` vs sparse-`C_lmn` gap that Table I quantifies (∼16×).
//!
//! The dense matvecs go through `dg_kernels::linalg::DMat`, our stand-in
//! for the Eigen 3.3.4 calls in the paper's measurement.
//!
//! [`aliased`] additionally provides the *under-integrated* variant
//! (`Nq = p+1` points per dimension, the collocation count): the aliasing
//! the paper's §II argues is fatal for kinetic equations. The ablation
//! bench shows its energy bookkeeping breaking.

pub mod aliased;
pub mod nodal_vlasov;
pub mod quad_eval;

pub use nodal_vlasov::NodalVlasov;
pub use quad_eval::QuadEval;

/// Gauss points per dimension needed to integrate `∂w_l α_h f_h` exactly
/// (degree ≤ 3p per dimension).
pub fn alias_free_points(p: usize) -> usize {
    (3 * p + 1).div_ceil(2)
}

/// The under-integrated (collocation) count that produces aliasing.
pub fn aliased_points(p: usize) -> usize {
    p + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_point_counts() {
        assert_eq!(alias_free_points(1), 2);
        assert_eq!(alias_free_points(2), 4);
        assert_eq!(alias_free_points(3), 5);
        assert_eq!(aliased_points(2), 3);
    }
}
