//! Full-system drivers for the nodal pipelines — exact and aliased.
//!
//! Table I times a *complete* Vlasov–Maxwell step (two species, field
//! update, current coupling, RK accumulation). [`NodalSystem`] wires the
//! quadrature-pipeline Vlasov operator into the same coupled system and
//! the same SSP-RK3 stepper as the modal solver, so the cost comparison is
//! apples-to-apples; with [`crate::aliased_points`] it becomes the
//! under-integrated scheme whose energy bookkeeping the §II argument says
//! must fail (ablation bench).

use crate::nodal_vlasov::{NodalVlasov, NodalWorkspace};
use dg_core::moments::{accumulate_current, MomentScratch};
use dg_core::ssprk::ssp_rk3_generic;
use dg_core::system::{SystemState, VlasovMaxwell};
use dg_grid::DgField;
use std::sync::Arc;

/// A Vlasov–Maxwell system whose kinetic update runs through the nodal
/// (quadrature) pipeline. Reuses the modal system's Maxwell solver, moment
/// reductions and species bookkeeping — those costs are common to both
/// columns of Table I.
pub struct NodalSystem {
    pub inner: VlasovMaxwell,
    pub nodal: NodalVlasov,
    ws: NodalWorkspace,
    scratch_j: DgField,
    scratch_rho: DgField,
}

impl NodalSystem {
    pub fn new(inner: VlasovMaxwell, nq_per_dim: usize) -> Self {
        let nodal = NodalVlasov::new(
            Arc::clone(&inner.kernels),
            inner.grid.clone(),
            inner.vlasov.flux,
            nq_per_dim,
        );
        let ws = nodal.workspace();
        let nconf = inner.grid.conf.len();
        let nc = inner.kernels.nc();
        NodalSystem {
            inner,
            nodal,
            ws,
            scratch_j: DgField::zeros(nconf, 3 * nc),
            scratch_rho: DgField::zeros(nconf, nc),
        }
    }

    /// Full coupled RHS with the nodal kinetic evaluator.
    pub fn rhs(&mut self, state: &SystemState, out: &mut SystemState) {
        out.fill(0.0);
        let nconf = self.inner.grid.conf.len();
        for (s, sp) in self.inner.species.iter().enumerate() {
            self.nodal.accumulate_rhs(
                sp.qm(),
                &state.species_f[s],
                &state.em,
                &mut out.species_f[s],
                &mut self.ws,
            );
        }
        if self.inner.evolve_field() {
            self.inner.maxwell.rhs(&state.em, &mut out.em);
            self.scratch_j.fill(0.0);
            self.scratch_rho.fill(0.0);
            let mut mws = MomentScratch::for_kernels(&self.inner.kernels);
            for (s, sp) in self.inner.species.iter().enumerate() {
                accumulate_current(
                    &self.inner.kernels,
                    &self.inner.grid,
                    sp.charge,
                    &state.species_f[s],
                    &mut self.scratch_j,
                    if self.inner.track_charge() {
                        Some(&mut self.scratch_rho)
                    } else {
                        None
                    },
                    0..nconf,
                    &mut mws,
                );
            }
            self.inner.maxwell.add_sources(
                &self.scratch_j,
                if self.inner.track_charge() {
                    Some(&self.scratch_rho)
                } else {
                    None
                },
                &mut out.em,
            );
        }
    }

    /// One SSP-RK3 step (same integrator as the modal path).
    pub fn step(
        &mut self,
        state: &mut SystemState,
        stage: &mut SystemState,
        rhs_buf: &mut SystemState,
        dt: f64,
    ) {
        // Borrow gymnastics: split `self` so the closure can call `rhs`.
        let this: *mut NodalSystem = self;
        ssp_rk3_generic(state, stage, rhs_buf, dt, |s, o| {
            // SAFETY: `ssp_rk3_generic` only invokes the closure serially
            // and `s`/`o` never alias `self`'s internals.
            unsafe { (*this).rhs(s, o) }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alias_free_points, aliased_points};
    use dg_basis::BasisKind;
    use dg_core::app::{AppBuilder, FieldSpec, SpeciesSpec};
    use dg_core::species::maxwellian;

    fn two_stream_app(p: usize) -> dg_core::app::App {
        let k = 0.5;
        AppBuilder::new()
            .conf_grid(&[0.0], &[2.0 * std::f64::consts::PI / k], &[8])
            .poly_order(p)
            .basis(BasisKind::Serendipity)
            .species(
                SpeciesSpec::new("elc", -1.0, 1.0, &[-8.0], &[8.0], &[12]).initial(move |x, v| {
                    let pert = 1.0 + 1e-2 * (k * x[0]).cos();
                    pert * 0.5
                        * (maxwellian(1.0, &[2.5], 0.5, v) + maxwellian(1.0, &[-2.5], 0.5, v))
                }),
            )
            .field(FieldSpec::new(5.0).with_poisson_init())
            .build()
            .unwrap()
    }

    #[test]
    fn nodal_system_matches_modal_system_over_steps() {
        let p = 2;
        let mut app = two_stream_app(p);
        let dt = 1e-3;
        // Nodal twin of the same initial state.
        let (sys2, mut n_state) = two_stream_app(p).into_parts();
        let mut nodal = NodalSystem::new(sys2, alias_free_points(p));
        let mut stage = nodal.inner.new_state();
        let mut rhs = nodal.inner.new_state();

        app.set_fixed_dt(dt);
        for _ in 0..5 {
            app.step().unwrap();
            nodal.step(&mut n_state, &mut stage, &mut rhs, dt);
        }
        let fm = &app.state().species_f[0];
        let fn_ = &n_state.species_f[0];
        let scale = fm.max_abs();
        let mut diff: f64 = 0.0;
        for (a, b) in fm.as_slice().iter().zip(fn_.as_slice()) {
            diff = diff.max((a - b).abs());
        }
        assert!(
            diff < 1e-9 * scale,
            "modal and alias-free nodal trajectories must agree: {diff}"
        );
    }

    #[test]
    fn aliased_system_diverges_from_exact() {
        let p = 2;
        let dt = 2e-3;
        let (sys, e_state) = two_stream_app(p).into_parts();
        let mut e_state = e_state;
        let mut exact = NodalSystem::new(sys, alias_free_points(p));
        let (sys2, mut a_state) = two_stream_app(p).into_parts();
        let mut alia = NodalSystem::new(sys2, aliased_points(p));

        let mut stage = exact.inner.new_state();
        let mut rhs = exact.inner.new_state();
        for _ in 0..20 {
            exact.step(&mut e_state, &mut stage, &mut rhs, dt);
            alia.step(&mut a_state, &mut stage, &mut rhs, dt);
        }
        let mut diff: f64 = 0.0;
        for (a, b) in e_state.species_f[0]
            .as_slice()
            .iter()
            .zip(a_state.species_f[0].as_slice())
        {
            diff = diff.max((a - b).abs());
        }
        // The field perturbation is small (1e-2) so the absolute divergence
        // is small too — but it must sit orders of magnitude above the
        // round-off floor (~1e-13) at which the alias-free nodal path tracks
        // the modal one.
        assert!(
            diff > 1e-10,
            "under-integration must alter the trajectory, diff {diff}"
        );
    }
}
