//! Dense quadrature tables for a phase basis: the nodal pipeline's data.

// Stencil/loop style: index-coupled quadrature sweeps index several arrays in lockstep;
// `needless_range_loop` rewrites would obscure that (workspace allow
// was scoped down to the modules that need it).
#![allow(clippy::needless_range_loop)]
use dg_basis::Basis;
use dg_kernels::linalg::DMat;
use dg_poly::quad::TensorGauss;

/// Volume and face quadrature tables for one basis at `nq` points per
/// dimension.
#[derive(Clone, Debug)]
pub struct QuadEval {
    /// Points per dimension.
    pub nq_per_dim: usize,
    /// Volume quadrature weights (`Nq` total points).
    pub weights: Vec<f64>,
    /// Interpolation `Nq × Np`: `f(ξ_q) = Σ_l Φ_ql f_l`.
    pub phi: DMat,
    /// Per dimension: `∂w_l/∂ξ_d` at the volume points (`Nq × Np`).
    pub dphi: Vec<DMat>,
    /// Per direction: face tables.
    pub faces: Vec<FaceQuad>,
}

/// Face quadrature for one normal direction.
#[derive(Clone, Debug)]
pub struct FaceQuad {
    /// Face weights (`Nqf` points on the `(d−1)`-cube).
    pub weights: Vec<f64>,
    /// Cell basis at the lower face `ξ_dir = −1` (`Nqf × Np`).
    pub trace_lo: DMat,
    /// Cell basis at the upper face `ξ_dir = +1`.
    pub trace_hi: DMat,
    /// Face basis at the face points (`Nqf × Nf`) for interpolating `α̂`.
    pub phi_face: DMat,
}

impl QuadEval {
    pub fn new(basis: &Basis, face_bases: &[&Basis], nq_per_dim: usize) -> Self {
        let ndim = basis.ndim();
        let np = basis.len();
        // Volume tables.
        let mut tg = TensorGauss::new(nq_per_dim, ndim);
        let nq = tg.total_points();
        let mut weights = Vec::with_capacity(nq);
        let mut phi = DMat::zeros(nq, np);
        let mut dphi: Vec<DMat> = (0..ndim).map(|_| DMat::zeros(nq, np)).collect();
        let mut xi = vec![0.0; ndim];
        let mut q = 0;
        while let Some(w) = tg.next_point(&mut xi) {
            weights.push(w);
            let vals = basis.eval_all(&xi);
            phi.data[q * np..(q + 1) * np].copy_from_slice(&vals);
            for d in 0..ndim {
                let g = basis.eval_grad(d, &xi);
                dphi[d].data[q * np..(q + 1) * np].copy_from_slice(&g);
            }
            q += 1;
        }

        // Face tables.
        let mut faces = Vec::with_capacity(ndim);
        for dir in 0..ndim {
            let fdim = ndim - 1;
            let fb = face_bases[dir];
            let nf = fb.len();
            let mut tgf = TensorGauss::new(nq_per_dim, fdim);
            let nqf = tgf.total_points().max(1);
            let mut fw = Vec::with_capacity(nqf);
            let mut trace_lo = DMat::zeros(nqf, np);
            let mut trace_hi = DMat::zeros(nqf, np);
            let mut phi_face = DMat::zeros(nqf, nf);
            let mut fxi = vec![0.0; fdim.max(1)];
            let mut cxi = vec![0.0; ndim];
            if fdim == 0 {
                // 1D cells: the face is a point with unit weight.
                fw.push(1.0);
                cxi[dir] = -1.0;
                trace_lo.data[..np].copy_from_slice(&basis.eval_all(&cxi));
                cxi[dir] = 1.0;
                trace_hi.data[..np].copy_from_slice(&basis.eval_all(&cxi));
                phi_face.data[..nf].copy_from_slice(&fb.eval_all(&[]));
            } else {
                let mut q = 0;
                while let Some(w) = tgf.next_point(&mut fxi) {
                    fw.push(w);
                    // Assemble the cell point from face coordinates.
                    let mut k = 0;
                    for d in 0..ndim {
                        if d == dir {
                            continue;
                        }
                        cxi[d] = fxi[k];
                        k += 1;
                    }
                    cxi[dir] = -1.0;
                    trace_lo.data[q * np..(q + 1) * np].copy_from_slice(&basis.eval_all(&cxi));
                    cxi[dir] = 1.0;
                    trace_hi.data[q * np..(q + 1) * np].copy_from_slice(&basis.eval_all(&cxi));
                    phi_face.data[q * nf..(q + 1) * nf].copy_from_slice(&fb.eval_all(&fxi[..fdim]));
                    q += 1;
                }
            }
            faces.push(FaceQuad {
                weights: fw,
                trace_lo,
                trace_hi,
                phi_face,
            });
        }
        QuadEval {
            nq_per_dim,
            weights,
            phi,
            dphi,
            faces,
        }
    }

    pub fn nq(&self) -> usize {
        self.weights.len()
    }

    /// Multiplication count of one volume evaluation through this pipeline
    /// (3 dense matvecs + pointwise products, per direction pair as used by
    /// [`crate::NodalVlasov`]).
    pub fn volume_mults(&self, np: usize, ndirs: usize) -> usize {
        let nq = self.nq();
        // interp f once + per direction (interp α + product + project)
        nq * np + ndirs * (nq * np + nq + nq * np)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_basis::{BasisKind, FaceBasis};

    #[test]
    fn mass_matrix_is_identity_under_exact_quadrature() {
        let basis = Basis::new(BasisKind::Serendipity, 3, 2);
        let fbs: Vec<Basis> = (0..3).map(|d| FaceBasis::new(&basis, d).basis).collect();
        let fb_refs: Vec<&Basis> = fbs.iter().collect();
        let q = QuadEval::new(&basis, &fb_refs, 4);
        let np = basis.len();
        // M = Φᵀ diag(w) Φ must be the identity.
        for i in 0..np {
            for j in 0..np {
                let mut acc = 0.0;
                for qp in 0..q.nq() {
                    acc += q.weights[qp] * q.phi.at(qp, i) * q.phi.at(qp, j);
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((acc - want).abs() < 1e-12, "M[{i}][{j}] = {acc}");
            }
        }
    }

    #[test]
    fn quadrature_gradient_matches_exact_grad_mass() {
        let basis = Basis::new(BasisKind::Tensor, 2, 2);
        let fbs: Vec<Basis> = (0..2).map(|d| FaceBasis::new(&basis, d).basis).collect();
        let fb_refs: Vec<&Basis> = fbs.iter().collect();
        let q = QuadEval::new(&basis, &fb_refs, 4);
        let t = dg_poly::tables::Tables1d::new(2);
        let np = basis.len();
        for d in 0..2 {
            for l in 0..np {
                for m in 0..np {
                    let mut acc = 0.0;
                    for qp in 0..q.nq() {
                        acc += q.weights[qp] * q.dphi[d].at(qp, l) * q.phi.at(qp, m);
                    }
                    // Exact: factorized 1D gradient-mass.
                    let (el, em) = (basis.exps(l), basis.exps(m));
                    let mut want = 1.0;
                    for dd in 0..2 {
                        want *= if dd == d {
                            t.grad_mass(el[dd] as usize, em[dd] as usize)
                        } else if el[dd] == em[dd] {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    assert!((acc - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn face_weights_cover_face_measure() {
        let basis = Basis::new(BasisKind::Serendipity, 3, 1);
        let fbs: Vec<Basis> = (0..3).map(|d| FaceBasis::new(&basis, d).basis).collect();
        let fb_refs: Vec<&Basis> = fbs.iter().collect();
        let q = QuadEval::new(&basis, &fb_refs, 2);
        for f in &q.faces {
            let s: f64 = f.weights.iter().sum();
            assert!((s - 4.0).abs() < 1e-12, "face measure {s}");
        }
    }
}
