//! Diagnostics and the machine-readable JSON report.

use std::fmt;

/// The four enforced rule families plus waiver hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unsafe` block/fn/impl without a `// SAFETY:` comment, or a
    /// `pub unsafe fn` without a `# Safety` doc section.
    UnsafeAudit,
    /// Deny-listed allocating construct inside the hot-path file set.
    HotAlloc,
    /// `HashMap`/`HashSet` iteration or worker-closure float
    /// accumulation in numeric code.
    Determinism,
    /// `codegen::MANIFEST` vs. committed `generated/` artifacts,
    /// `mod.rs` includes and the four registry tables.
    Registry,
    /// Raw clock read (`Instant::now` / `.elapsed` / `SystemTime`)
    /// inside the hot-path set instead of the non-allocating span API.
    TelemetrySpan,
    /// Malformed `// dg-analyze: allow(...)` waiver.
    Waiver,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeAudit => "unsafe_audit",
            Rule::HotAlloc => "hot_alloc",
            Rule::Determinism => "determinism",
            Rule::Registry => "registry",
            Rule::TelemetrySpan => "telemetry_span",
            Rule::Waiver => "waiver",
        }
    }

    /// The rule names accepted inside `allow(...)`. `registry` and
    /// `waiver` are not waivable: a registry inconsistency has no
    /// meaningful inline site, and waiving waiver hygiene is circular.
    pub fn waivable(id: &str) -> bool {
        matches!(
            id,
            "unsafe_audit" | "hot_alloc" | "determinism" | "telemetry_span"
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn id(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a workspace-relative `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    /// 1-based; 0 for file-level findings (e.g. a missing artifact).
    pub line: usize,
    pub rule: Rule,
    pub severity: Severity,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.severity.id(),
            self.rule.id(),
            self.message
        )
    }
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned (for the JSON report's coverage record).
    pub files_scanned: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Sort for stable output: file, then line, then rule.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Hand-rolled JSON (the container has no serde): one top-level
    /// object with counts and a `diagnostics` array.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"errors\": {},\n", self.errors()));
        s.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(d.rule.id()),
                json_str(d.severity.id()),
                json_str(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            diagnostics: vec![Diagnostic {
                file: "a\"b.rs".into(),
                line: 3,
                rule: Rule::HotAlloc,
                severity: Severity::Error,
                message: "deny \"vec!\"\nhere".into(),
            }],
            files_scanned: 1,
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("\\n"));
    }
}
