//! Inline waiver syntax:
//! `// dg-analyze: allow(<rule>[, <rule>…]) — <reason>`.
//!
//! A waiver on the same line as the flagged code suppresses that line.
//! A waiver on its own comment line suppresses the next code line — or,
//! when that line starts a `fn` item, the whole function body, so one
//! annotation covers a cold constructor inside a hot file without
//! peppering every allocation. A reason (after `—`, `-` or `:`) is
//! mandatory: un-justified waivers are themselves diagnostics.

use crate::report::{Diagnostic, Rule, Severity};
use crate::scan::{find_char_from, has_word, match_brace, Line, SourceFile};

/// Per-file suppression table: `covered[rule_id]` holds a line mask.
#[derive(Debug, Default)]
pub struct Suppressions {
    covered: std::collections::BTreeMap<String, Vec<bool>>,
}

impl Suppressions {
    pub fn is_suppressed(&self, rule: Rule, line: usize) -> bool {
        self.covered
            .get(rule.id())
            .is_some_and(|mask| line >= 1 && mask.get(line - 1).copied().unwrap_or(false))
    }
}

const MARKER: &str = "dg-analyze:";

/// Parse every waiver comment in `file`, returning the suppression table
/// and any waiver-hygiene diagnostics (missing reason, unknown or
/// non-waivable rule name, malformed syntax).
pub fn collect(file: &SourceFile) -> (Suppressions, Vec<Diagnostic>) {
    let mut sup = Suppressions::default();
    let mut diags = Vec::new();
    let nlines = file.lines.len();
    for (li, line) in file.lines.iter().enumerate() {
        // Doc comments never carry waivers: prose *about* the waiver
        // syntax (like this crate's own docs) must not waive anything.
        let trimmed = line.comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") || trimmed.starts_with("/**") {
            continue;
        }
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        let rest = line.comment[pos + MARKER.len()..].trim_start();
        let bad = |msg: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: li + 1,
                rule: Rule::Waiver,
                severity: Severity::Error,
                message: msg.to_string(),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(
                "malformed waiver: expected `dg-analyze: allow(<rule>) — <reason>`",
                &mut diags,
            );
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("malformed waiver: unclosed `allow(`", &mut diags);
            continue;
        };
        let rules: Vec<&str> = args[..close].split(',').map(str::trim).collect();
        if rules.iter().any(|r| r.is_empty()) || rules.is_empty() {
            bad("malformed waiver: empty rule list", &mut diags);
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !Rule::waivable(r) {
                bad(
                    &format!("waiver names unknown or non-waivable rule `{r}`"),
                    &mut diags,
                );
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim();
        if reason.is_empty() {
            bad(
                "waiver needs a reason: `dg-analyze: allow(<rule>) — <reason>`",
                &mut diags,
            );
            continue;
        }

        // Coverage: trailing waiver → this line; standalone comment line
        // → next code line, extended to the whole body when it opens `fn`.
        let range = if !line.is_code_blank() {
            li..li + 1
        } else {
            let mut j = li + 1;
            while j < nlines && file.lines[j].is_code_blank() {
                j += 1;
            }
            if j >= nlines {
                bad("waiver at end of file covers nothing", &mut diags);
                continue;
            }
            fn_body_range(&file.lines, j).unwrap_or(j..j + 1)
        };
        for r in rules {
            let mask = sup
                .covered
                .entry(r.to_string())
                .or_insert_with(|| vec![false; nlines]);
            for m in &mut mask[range.clone()] {
                *m = true;
            }
        }
    }
    (sup, diags)
}

/// When line `j` begins a `fn` item, the line range of its whole body
/// (signature through closing brace).
fn fn_body_range(lines: &[Line], j: usize) -> Option<std::ops::Range<usize>> {
    if !has_word(&lines[j].code, "fn") {
        return None;
    }
    let (bl, bc) = find_char_from(lines, j, 0, '{')?;
    // A `;` before the opening brace means this was a bodiless signature
    // (trait method) and the `{` belongs to something else.
    for (li, l) in lines.iter().enumerate().take(bl + 1).skip(j) {
        let upto = if li == bl { bc } else { l.code.len() };
        if l.code[..upto].contains(';') {
            return None;
        }
    }
    let end = match_brace(lines, bl, bc)?;
    Some(j..end + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_lines, test_mask};

    fn file(src: &str) -> SourceFile {
        let lines = scan_lines(src);
        let in_test = test_mask(&lines);
        SourceFile {
            rel_path: "x.rs".into(),
            lines,
            in_test,
        }
    }

    #[test]
    fn trailing_waiver_covers_its_line_only() {
        let f = file("let a = vec![0]; // dg-analyze: allow(hot_alloc) — setup\nlet b = 1;\n");
        let (sup, diags) = collect(&f);
        assert!(diags.is_empty());
        assert!(sup.is_suppressed(Rule::HotAlloc, 1));
        assert!(!sup.is_suppressed(Rule::HotAlloc, 2));
        assert!(!sup.is_suppressed(Rule::Determinism, 1));
    }

    #[test]
    fn standalone_waiver_covers_following_fn_body() {
        let src = "\
// dg-analyze: allow(hot_alloc) — construction-time only
fn build() -> Vec<f64> {
    vec![0.0; 8]
}
fn hot() {}
";
        let f = file(src);
        let (sup, diags) = collect(&f);
        assert!(diags.is_empty());
        for l in 2..=4 {
            assert!(sup.is_suppressed(Rule::HotAlloc, l), "line {l}");
        }
        assert!(!sup.is_suppressed(Rule::HotAlloc, 5));
    }

    #[test]
    fn reason_is_mandatory_and_rules_validated() {
        let f = file("// dg-analyze: allow(hot_alloc)\nlet a = 1;\n");
        let (_, diags) = collect(&f);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("reason"));

        let f = file("// dg-analyze: allow(registry) — nope\nlet a = 1;\n");
        let (_, diags) = collect(&f);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("non-waivable"));
    }
}
