//! `dg-analyze` — the workspace invariant linter.
//!
//! The repository's three load-bearing invariants — bit-identical
//! results at every thread/rank count, zero-allocation RHS hot paths,
//! and an audited `unsafe` concurrency layer — are enforced dynamically
//! by `tests/alloc_free.rs` / `tests/threaded_equiv.rs` on the configs
//! those tests happen to run. This crate enforces them *statically*, on
//! every source file, in CI:
//!
//! 1. [`rules::unsafe_audit`] — `// SAFETY:` comments and `# Safety`
//!    doc sections on every `unsafe` block/fn/impl.
//! 2. [`rules::hot_alloc`] — no allocating constructs inside the
//!    hot-path file set (waivers for cold code).
//! 3. [`rules::determinism`] — no hash-order iteration, no
//!    worker-closure accumulation outside the blessed block-ordered
//!    reduction.
//! 4. [`rules::registry`] — `codegen::MANIFEST` ⇔ committed artifacts ⇔
//!    `mod.rs` includes ⇔ the four registry tables.
//! 5. [`rules::telemetry_span`] — no raw clock reads inside the
//!    hot-path set: timing goes through the non-allocating
//!    `span!`/`now_ns()` telemetry API so collection stays disableable.
//!
//! See DESIGN.md "Static analysis & invariants" for the rule catalog
//! and the waiver syntax. The binary (`cargo run -p dg-analyze --
//! --deny-warnings --json target/analyze.json`) exits nonzero on any
//! error (or warning under `--deny-warnings`) and writes a
//! machine-readable report.

pub mod report;
pub mod rules;
pub mod scan;
pub mod waiver;

use report::Report;
use scan::SourceFile;
use std::path::{Path, PathBuf};

/// Directories scanned below the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "shims", "src", "tests"];

/// Path fragments never scanned: build output and the analyzer's own
/// seeded-bad golden fixtures.
const SKIP_FRAGMENTS: &[&str] = &["/target/", "/tests/fixtures/"];

/// Scan one source text into the per-line model rules consume.
pub fn scan_source(rel_path: &str, text: &str) -> SourceFile {
    let lines = scan::scan_lines(text);
    let in_test = scan::test_mask(&lines);
    SourceFile {
        rel_path: rel_path.to_string(),
        lines,
        in_test,
    }
}

/// Run the three per-file rule families plus waiver hygiene on one file.
pub fn analyze_file(file: &SourceFile) -> Vec<report::Diagnostic> {
    let (sup, mut diags) = waiver::collect(file);
    for d in rules::unsafe_audit::check(file)
        .into_iter()
        .chain(rules::hot_alloc::check(file))
        .chain(rules::determinism::check(file))
        .chain(rules::telemetry_span::check(file))
    {
        if !sup.is_suppressed(d.rule, d.line) {
            diags.push(d);
        }
    }
    diags
}

/// Analyze the workspace rooted at `root`: every `.rs` file under the
/// scan dirs, plus the root-level registry consistency check.
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();
    for path in &files {
        let rel = rel_path(root, path);
        if SKIP_FRAGMENTS.iter().any(|f| format!("/{rel}").contains(f)) {
            continue;
        }
        let text = std::fs::read_to_string(path)?;
        let file = scan_source(&rel, &text);
        report.diagnostics.extend(analyze_file(&file));
        report.files_scanned += 1;
    }
    report.diagnostics.extend(rules::registry::check_dir(
        &rules::registry::manifest_entries(),
        &root.join("crates/kernels/src/generated"),
        "crates/kernels/src/generated",
    ));
    report.sort();
    Ok(report)
}

/// Does `root` look like the workspace this linter is written for?
pub fn looks_like_workspace_root(root: &Path) -> bool {
    root.join("Cargo.toml").is_file() && root.join("crates").is_dir()
}

/// Locate the workspace root: `start` or the nearest ancestor with a
/// `Cargo.toml` + `crates/` pair.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if looks_like_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// True when `report` should fail the build.
pub fn failed(report: &Report, deny_warnings: bool) -> bool {
    report.errors() > 0 || (deny_warnings && report.warnings() > 0)
}

// Re-exported so the fixture tests can name the rule ids.
pub use report::{Diagnostic, Rule, Severity};
