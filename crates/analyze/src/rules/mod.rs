//! The five enforced rule families. Each module documents its rule,
//! exposes `check(…) -> Vec<Diagnostic>`, and is covered by both unit
//! tests and the golden fixtures in `tests/golden.rs`.

pub mod determinism;
pub mod hot_alloc;
pub mod registry;
pub mod telemetry_span;
pub mod unsafe_audit;
