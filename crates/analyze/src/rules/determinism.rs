//! Rule family 3: the determinism lint.
//!
//! Bit-identical results at every thread/rank count are a load-bearing
//! invariant (`tests/threaded_equiv.rs`, `tests/backend_equiv.rs`).
//! Two static hazards are flagged:
//!
//! 1. **Hash-order iteration.** Iterating a `HashMap`/`HashSet` yields a
//!    nondeterministic order; folding floats in that order breaks
//!    bit-identity between runs. Keyed lookups (`get`/`entry`/`insert`/
//!    `contains_key`) are exempt — that is why the kernel cache in
//!    `crates/kernels/src/cache.rs` passes without a waiver.
//! 2. **Worker-closure float accumulation.** Compound accumulation
//!    (`+=`, `-=`, `*=`) or `fold`/`sum` inside a closure passed to
//!    `.scope(` / `.broadcast(` / `.spawn(` runs in scheduler order.
//!    The blessed pattern is what `BlockRhs` does: accumulate into
//!    per-block scratch inside the closure-free sweep, reduce in block
//!    order on the main thread after the barrier.
//!
//! `#[cfg(test)]` modules are exempt (tests assert determinism
//! dynamically; their own bookkeeping is not a hazard).

use crate::report::{Diagnostic, Rule, Severity};
use crate::scan::{find_word, match_brace, SourceFile};
use std::collections::BTreeSet;

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    hash_iteration(file, &mut diags);
    worker_closure_accumulation(file, &mut diags);
    diags
}

/// Collect identifiers bound to `HashMap`/`HashSet` values in this file
/// (let-bindings, fields, statics), then flag iteration over them.
fn hash_iteration(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let mut names: BTreeSet<String> = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] name = …` / `let name: HashMap<…> = …`.
        if let Some(p) = find_word(code, "let", 0) {
            let rest = code[p + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            if let Some(name) = leading_ident(rest) {
                names.insert(name);
                continue;
            }
        }
        // `name: HashMap<…>` field or static declarations.
        if let Some(hp) = code.find("Hash") {
            if let Some(colon) = code[..hp].rfind(':') {
                let before = code[..colon].trim_end();
                if let Some(name) = trailing_ident(before) {
                    names.insert(name);
                }
            }
        }
    }
    if names.is_empty() {
        return;
    }
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        let code = &line.code;
        for name in &names {
            let method_iter = ITER_METHODS.iter().any(|m| {
                find_word(code, name, 0)
                    .map(|p| code[p + name.len()..].starts_with(m))
                    .unwrap_or(false)
            });
            let for_iter = find_word(code, "for", 0)
                .and_then(|fp| find_word(code, "in", fp))
                .map(|ip| find_word(code, name, ip).is_some())
                .unwrap_or(false);
            if method_iter || for_iter {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: li + 1,
                    rule: Rule::Determinism,
                    severity: Severity::Error,
                    message: format!(
                        "iteration over hash-ordered `{name}` (nondeterministic order breaks \
                         bit-identity; use a keyed lookup, a sorted container, or waive with a reason)"
                    ),
                });
                break;
            }
        }
    }
}

/// Flag compound accumulation inside `.scope(` / `.broadcast(` /
/// `.spawn(` closure bodies.
fn worker_closure_accumulation(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const SPAWNERS: &[&str] = &[".scope(", ".broadcast(", ".spawn("];
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for spawner in SPAWNERS {
            let Some(p) = line.code.find(spawner) else {
                continue;
            };
            // The closure body brace, if any, before the call's `)`.
            let Some((bl, bc)) = closure_brace(file, li, p + spawner.len()) else {
                continue;
            };
            let end = match_brace(&file.lines, bl, bc).unwrap_or(file.lines.len() - 1);
            for j in bl..=end {
                if flagged.contains(&j) || file.in_test[j] {
                    continue;
                }
                let code = &file.lines[j].code;
                let accum = ["+=", "-=", "*="].iter().any(|op| code.contains(op))
                    || code.contains(".fold(")
                    || code.contains(".sum()")
                    || code.contains(".sum::");
                if accum {
                    flagged.insert(j);
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: j + 1,
                        rule: Rule::Determinism,
                        severity: Severity::Error,
                        message: format!(
                            "accumulation inside a worker closure (line {} `{}`): reductions must \
                             be block-ordered on the main thread after the barrier, as in \
                             `BlockRhs::species_rhs`",
                            li + 1,
                            spawner.trim_start_matches('.').trim_end_matches('('),
                        ),
                    });
                }
            }
        }
    }
    diags.sort_by_key(|d| d.line);
}

/// Find the `{` opening a closure body within the call starting at
/// `(line, col)` (tracking paren depth so `.spawn(move || f(x))` —
/// no braces — yields `None`).
fn closure_brace(file: &SourceFile, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 1i64; // we start just inside the call's `(`
    let mut li = line;
    let mut c0 = col;
    loop {
        let code = &file.lines.get(li)?.code;
        for (k, ch) in code[c0.min(code.len())..].char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                '{' => return Some((li, c0 + k)),
                _ => {}
            }
        }
        li += 1;
        c0 = 0;
    }
}

fn leading_ident(s: &str) -> Option<String> {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    (end > 0 && !s.as_bytes()[0].is_ascii_digit()).then(|| s[..end].to_string())
}

fn trailing_ident(s: &str) -> Option<String> {
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let id = &s[start..];
    (!id.is_empty() && !id.as_bytes()[0].is_ascii_digit()).then(|| id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_lines, test_mask};

    fn run(src: &str) -> Vec<Diagnostic> {
        let lines = scan_lines(src);
        let in_test = test_mask(&lines);
        check(&SourceFile {
            rel_path: "x.rs".into(),
            lines,
            in_test,
        })
    }

    #[test]
    fn hashmap_iteration_fires_keyed_lookup_passes() {
        let d = run("fn f(m: &std::collections::HashMap<u32, f64>) {\n    let map: HashMap<u32, f64> = g();\n    for (k, v) in map.iter() { h(k, v); }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);

        let d = run("fn f() {\n    let map: HashMap<u32, f64> = g();\n    let x = map.get(&3);\n    map.entry(7).or_insert(0.0);\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn field_typed_hashset_for_loop_fires() {
        let d = run(
            "struct S { seen: HashSet<u64> }\nfn f(s: &S) {\n    for v in &s.seen { g(v); }\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn worker_closure_accumulation_fires() {
        let src = "\
fn f(pool: &P, total: &mut f64) {
    pool.broadcast(|ctx| {
        *total += g(ctx);
    });
}
";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn braceless_spawn_and_main_thread_reduction_pass() {
        let src = "\
fn f(pool: &P, total: &mut f64) {
    pool.scope(|s| s.spawn(move |_| g()));
    for w in &ws {
        *total += w.partial;
    }
}
";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }
}
