//! Rule family 3: the determinism lint.
//!
//! Bit-identical results at every thread/rank count are a load-bearing
//! invariant (`tests/threaded_equiv.rs`, `tests/backend_equiv.rs`).
//! Two static hazards are flagged:
//!
//! 1. **Hash-order iteration.** Iterating a `HashMap`/`HashSet` yields a
//!    nondeterministic order; folding floats in that order breaks
//!    bit-identity between runs. Keyed lookups (`get`/`entry`/`insert`/
//!    `contains_key`) are exempt — that is why the kernel cache in
//!    `crates/kernels/src/cache.rs` passes without a waiver.
//! 2. **Worker-closure float accumulation.** Compound accumulation
//!    (`+=`, `-=`, `*=`) or `fold`/`sum` inside a closure passed to
//!    `.scope(` / `.broadcast(` / `.spawn(` / `::spawn(` runs in
//!    scheduler order. The blessed pattern is what `BlockRhs` does:
//!    accumulate into per-block scratch inside the closure-free sweep,
//!    reduce in block order on the main thread after the barrier.
//!    Braceless closures are covered too: the closure expression itself
//!    is scanned, and when it is a single call to a same-file function
//!    (the `pool.broadcast(|_| run_worker(&shared))` scheduler idiom),
//!    the lint follows **one** level into that function's body — so
//!    hiding the accumulation behind a trivial wrapper does not evade
//!    the rule. Braced closures are *not* followed into their callees:
//!    a braced body is the visible worker code, and calls out of it are
//!    the blessed per-block-scratch pattern.
//!
//! `#[cfg(test)]` modules are exempt (tests assert determinism
//! dynamically; their own bookkeeping is not a hazard).

use crate::report::{Diagnostic, Rule, Severity};
use crate::scan::{find_word, match_brace, SourceFile};
use std::collections::BTreeSet;

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    hash_iteration(file, &mut diags);
    worker_closure_accumulation(file, &mut diags);
    diags
}

/// Collect identifiers bound to `HashMap`/`HashSet` values in this file
/// (let-bindings, fields, statics), then flag iteration over them.
fn hash_iteration(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let mut names: BTreeSet<String> = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] name = …` / `let name: HashMap<…> = …`.
        if let Some(p) = find_word(code, "let", 0) {
            let rest = code[p + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            if let Some(name) = leading_ident(rest) {
                names.insert(name);
                continue;
            }
        }
        // `name: HashMap<…>` field or static declarations.
        if let Some(hp) = code.find("Hash") {
            if let Some(colon) = code[..hp].rfind(':') {
                let before = code[..colon].trim_end();
                if let Some(name) = trailing_ident(before) {
                    names.insert(name);
                }
            }
        }
    }
    if names.is_empty() {
        return;
    }
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        let code = &line.code;
        for name in &names {
            let method_iter = ITER_METHODS.iter().any(|m| {
                find_word(code, name, 0)
                    .map(|p| code[p + name.len()..].starts_with(m))
                    .unwrap_or(false)
            });
            let for_iter = find_word(code, "for", 0)
                .and_then(|fp| find_word(code, "in", fp))
                .map(|ip| find_word(code, name, ip).is_some())
                .unwrap_or(false);
            if method_iter || for_iter {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: li + 1,
                    rule: Rule::Determinism,
                    severity: Severity::Error,
                    message: format!(
                        "iteration over hash-ordered `{name}` (nondeterministic order breaks \
                         bit-identity; use a keyed lookup, a sorted container, or waive with a reason)"
                    ),
                });
                break;
            }
        }
    }
}

/// One line of code contains a compound float accumulation or an
/// order-sensitive iterator reduction.
fn has_accumulation(code: &str) -> bool {
    ["+=", "-=", "*="].iter().any(|op| code.contains(op))
        || code.contains(".fold(")
        || code.contains(".sum()")
        || code.contains(".sum::")
}

/// Flag compound accumulation inside `.scope(` / `.broadcast(` /
/// `.spawn(` / `::spawn(` closure bodies (braced or braceless; see the
/// module docs for the one-level wrapper follow).
fn worker_closure_accumulation(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const SPAWNERS: &[&str] = &[".scope(", ".broadcast(", ".spawn(", "::spawn("];
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for spawner in SPAWNERS {
            let Some(p) = line.code.find(spawner) else {
                continue;
            };
            let arg_start = p + spawner.len();
            // The closure body brace, if any, before the call's `)`.
            let Some((bl, bc)) = closure_brace(file, li, arg_start) else {
                // Braceless argument: scan the expression itself, and
                // follow one level into a same-file single-call wrapper.
                braceless_spawner_argument(file, li, arg_start, spawner, &mut flagged, diags);
                continue;
            };
            let end = match_brace(&file.lines, bl, bc).unwrap_or(file.lines.len() - 1);
            for j in bl..=end {
                if flagged.contains(&j) || file.in_test[j] {
                    continue;
                }
                if has_accumulation(&file.lines[j].code) {
                    flagged.insert(j);
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: j + 1,
                        rule: Rule::Determinism,
                        severity: Severity::Error,
                        message: format!(
                            "accumulation inside a worker closure (line {} `{}`): reductions must \
                             be block-ordered on the main thread after the barrier, as in \
                             `BlockRhs::species_rhs`",
                            li + 1,
                            spawner_tag(spawner),
                        ),
                    });
                }
            }
        }
    }
    diags.sort_by_key(|d| d.line);
}

fn spawner_tag(spawner: &str) -> &str {
    spawner
        .trim_start_matches('.')
        .trim_start_matches(':')
        .trim_end_matches('(')
}

/// Handle a braceless spawner argument like
/// `pool.broadcast(|_| run_worker(&shared))` or
/// `thread::spawn(move || worker_loop(shared, i, n))`: flag accumulation
/// in the expression text itself, and when the closure body is a single
/// call to a plain same-file function, scan that function's body too
/// (one level only — wrappers must not hide scheduler-order reductions).
fn braceless_spawner_argument(
    file: &SourceFile,
    li: usize,
    arg_start: usize,
    spawner: &str,
    flagged: &mut BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(expr) = argument_text(file, li, arg_start) else {
        return;
    };
    if has_accumulation(&expr) && !flagged.contains(&li) {
        flagged.insert(li);
        diags.push(Diagnostic {
            file: file.rel_path.clone(),
            line: li + 1,
            rule: Rule::Determinism,
            severity: Severity::Error,
            message: format!(
                "accumulation inside a worker closure (`{}`): reductions must be block-ordered \
                 on the main thread after the barrier, as in `BlockRhs::species_rhs`",
                spawner_tag(spawner),
            ),
        });
    }
    let Some(callee) = single_call_callee(&expr) else {
        return;
    };
    let Some((bl, bc)) = local_fn_body(file, &callee) else {
        return;
    };
    let end = match_brace(&file.lines, bl, bc).unwrap_or(file.lines.len() - 1);
    for j in bl..=end {
        if flagged.contains(&j) || file.in_test[j] {
            continue;
        }
        if has_accumulation(&file.lines[j].code) {
            flagged.insert(j);
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: j + 1,
                rule: Rule::Determinism,
                severity: Severity::Error,
                message: format!(
                    "accumulation in `{callee}`, the body of the worker closure at line {} \
                     (`{}`): reductions must be block-ordered on the main thread after the \
                     barrier, as in `BlockRhs::species_rhs`",
                    li + 1,
                    spawner_tag(spawner),
                ),
            });
        }
    }
}

/// The call argument's source text from `(line, col)` (just inside the
/// call's `(`) to its matching `)`, joined across lines.
fn argument_text(file: &SourceFile, line: usize, col: usize) -> Option<String> {
    let mut depth = 1i64;
    let mut out = String::new();
    let mut li = line;
    let mut c0 = col;
    loop {
        let code = &file.lines.get(li)?.code;
        for ch in code[c0.min(code.len())..].chars() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(out);
                    }
                }
                _ => {}
            }
            out.push(ch);
        }
        out.push(' ');
        li += 1;
        c0 = 0;
    }
}

/// If `expr` is a closure whose whole body is one call to a plain local
/// identifier — `|_| run_worker(&shared)`, `move || worker_loop(a, b)` —
/// return that callee name. Method calls (`s.spawn(..)`), paths
/// (`m::f(..)`), and non-closure arguments yield `None`.
fn single_call_callee(expr: &str) -> Option<String> {
    let s = expr.trim();
    let s = s.strip_prefix("move").unwrap_or(s).trim_start();
    let s = s.strip_prefix('|')?;
    let close = s.find('|')?;
    let body = s[close + 1..].trim();
    let open = body.find('(')?;
    let callee = body[..open].trim();
    if callee.is_empty()
        || !callee.chars().all(|c| c.is_alphanumeric() || c == '_')
        || callee.as_bytes()[0].is_ascii_digit()
    {
        return None;
    }
    // The call must span the whole body: its `(` closes at the end.
    let mut depth = 0i64;
    for (k, ch) in body.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return body[k + 1..].trim().is_empty().then(|| callee.to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Locate the body brace of `fn name` defined at this file's non-test
/// top level.
fn local_fn_body(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        let code = &line.code;
        let Some(fp) = find_word(code, "fn", 0) else {
            continue;
        };
        let rest = code[fp + 2..].trim_start();
        if !(rest.starts_with(name)
            && rest[name.len()..]
                .chars()
                .next()
                .is_some_and(|c| c == '(' || c == '<' || c.is_whitespace()))
        {
            continue;
        }
        // The body `{` may sit on this or a following line (signatures
        // wrap); stop scanning at a `;` (trait method declarations).
        let mut c0 = fp;
        for j in li..file.lines.len() {
            let code = &file.lines[j].code;
            let tail = &code[c0.min(code.len())..];
            if let Some(k) = tail.find('{') {
                return Some((j, c0 + k));
            }
            if tail.contains(';') {
                break;
            }
            c0 = 0;
        }
    }
    None
}

/// Find the `{` opening a closure body within the call starting at
/// `(line, col)` (tracking paren depth so `.spawn(move || f(x))` —
/// no braces — yields `None`).
fn closure_brace(file: &SourceFile, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 1i64; // we start just inside the call's `(`
    let mut li = line;
    let mut c0 = col;
    loop {
        let code = &file.lines.get(li)?.code;
        for (k, ch) in code[c0.min(code.len())..].char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                '{' => return Some((li, c0 + k)),
                _ => {}
            }
        }
        li += 1;
        c0 = 0;
    }
}

fn leading_ident(s: &str) -> Option<String> {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    (end > 0 && !s.as_bytes()[0].is_ascii_digit()).then(|| s[..end].to_string())
}

fn trailing_ident(s: &str) -> Option<String> {
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let id = &s[start..];
    (!id.is_empty() && !id.as_bytes()[0].is_ascii_digit()).then(|| id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_lines, test_mask};

    fn run(src: &str) -> Vec<Diagnostic> {
        let lines = scan_lines(src);
        let in_test = test_mask(&lines);
        check(&SourceFile {
            rel_path: "x.rs".into(),
            lines,
            in_test,
        })
    }

    #[test]
    fn hashmap_iteration_fires_keyed_lookup_passes() {
        let d = run("fn f(m: &std::collections::HashMap<u32, f64>) {\n    let map: HashMap<u32, f64> = g();\n    for (k, v) in map.iter() { h(k, v); }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);

        let d = run("fn f() {\n    let map: HashMap<u32, f64> = g();\n    let x = map.get(&3);\n    map.entry(7).or_insert(0.0);\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn field_typed_hashset_for_loop_fires() {
        let d = run(
            "struct S { seen: HashSet<u64> }\nfn f(s: &S) {\n    for v in &s.seen { g(v); }\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn worker_closure_accumulation_fires() {
        let src = "\
fn f(pool: &P, total: &mut f64) {
    pool.broadcast(|ctx| {
        *total += g(ctx);
    });
}
";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn braceless_spawn_and_main_thread_reduction_pass() {
        let src = "\
fn f(pool: &P, total: &mut f64) {
    pool.scope(|s| s.spawn(move |_| g()));
    for w in &ws {
        *total += w.partial;
    }
}
";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn braceless_closure_expression_accumulation_fires() {
        let src = "\
fn f(pool: &P, xs: &[f64]) {
    pool.broadcast(|ctx| xs.iter().sum::<f64>());
}
";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn braceless_wrapper_is_followed_one_level() {
        let src = "\
fn f(pool: &P) {
    pool.broadcast(|_| run_worker(&shared));
}
fn run_worker(shared: &Shared) {
    let mut st = shared.state.lock().unwrap();
    st.remaining -= 1;
}
";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6, "{d:?}");
        assert!(d[0].message.contains("run_worker"), "{}", d[0].message);
    }

    #[test]
    fn thread_spawn_path_wrapper_fires_and_clean_wrapper_passes() {
        let src = "\
fn f() {
    std::thread::spawn(move || worker_loop(shared, 0, 1));
}
fn worker_loop(shared: &Shared, index: usize, n: usize) {
    total += g(index);
}
";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);

        // A clean wrapper body stays clean, and calls *out of* the
        // wrapper are not followed (one level only).
        let src = "\
fn f(pool: &P) {
    pool.broadcast(|_| run_worker(&shared));
}
fn run_worker(shared: &Shared) {
    deeper(shared);
}
fn deeper(shared: &Shared) {
    total += 1.0;
}
";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn braced_closure_callees_are_not_followed() {
        // The blessed `BlockRhs` shape: a braced worker closure calling a
        // helper that reduces into its *own* per-block scratch.
        let src = "\
fn f(pool: &P) {
    pool.broadcast(|ctx| {
        sweep_block(ctx);
    });
}
fn sweep_block(ctx: &C) {
    scratch[ctx.index()] += 1.0;
}
";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }
}
