//! Rule family 4: kernel-registry consistency.
//!
//! A manifest config is only *actually* on the fast path when four
//! things line up: the committed `generated/<stem>.rs` artifact exists
//! and defines every expected kernel function, `generated/mod.rs`
//! `include!`s it, and the matching registry table
//! (`VOLUME_REGISTRY` / `SURFACE_REGISTRY` / `MOMENT_REGISTRY` /
//! `LBO_REGISTRY`) carries its row. A half-registered config silently
//! falls back to the runtime sparse path — correct but slow, and
//! historically exactly how two committed configs went unnoticed (see
//! ROADMAP, PR 7). This rule makes that state a CI failure, in both
//! directions: manifest entries without artifacts *and* orphan
//! artifacts / includes / registry rows without a manifest entry.
//!
//! In production the expectations come from
//! [`dg_kernels::codegen::MANIFEST`] itself — the checker can never
//! drift from the generator. Golden-fixture tests hand-build
//! [`ManifestEntry`]s against seeded-bad fixture directories.

use crate::report::{Diagnostic, Rule, Severity};
use std::collections::BTreeSet;
use std::path::Path;

/// The per-config expectations, precomputed from a `KernelSpec`.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Volume stem, e.g. `vlasov_vol_1x1v_p1_ser` (artifact file stem and
    /// registry `name`).
    pub vol: String,
    pub surf: String,
    pub mom: String,
    pub lbo: String,
    pub cdim: usize,
    pub vdim: usize,
}

impl ManifestEntry {
    /// Every function name the four artifacts must define.
    fn expected_fns(&self) -> Vec<(String, String)> {
        let mut fns = Vec::new();
        let ndim = self.cdim + self.vdim;
        fns.push((self.vol.clone(), self.vol.clone()));
        fns.push((self.vol.clone(), format!("{}_b4", self.vol)));
        for d in 0..ndim {
            let suffix = if d < self.cdim {
                format!("_x{d}")
            } else {
                format!("_v{}", d - self.cdim)
            };
            fns.push((self.surf.clone(), format!("{}{suffix}", self.surf)));
            fns.push((self.surf.clone(), format!("{}{suffix}_b4", self.surf)));
        }
        fns.push((self.mom.clone(), format!("{}_m0", self.mom)));
        for j in 0..self.vdim {
            fns.push((self.mom.clone(), format!("{}_m1_v{j}", self.mom)));
        }
        fns.push((self.mom.clone(), format!("{}_m2", self.mom)));
        for stage in [
            "drag_vol",
            "drag_surf",
            "diff_grad",
            "diff_vol",
            "diff_surf",
        ] {
            for j in 0..self.vdim {
                fns.push((self.lbo.clone(), format!("{}_{stage}_v{j}", self.lbo)));
            }
        }
        fns
    }

    fn stems(&self) -> [&str; 4] {
        [&self.vol, &self.surf, &self.mom, &self.lbo]
    }
}

/// Build the expectation list from the real codegen manifest.
pub fn manifest_entries() -> Vec<ManifestEntry> {
    dg_kernels::codegen::MANIFEST
        .iter()
        .map(|spec| ManifestEntry {
            vol: spec.fn_name(),
            surf: spec.surf_name(),
            mom: spec.mom_name(),
            lbo: spec.lbo_name(),
            cdim: spec.cdim,
            vdim: spec.vdim,
        })
        .collect()
}

/// The four registry tables, paired with the stem family each indexes.
const TABLES: &[(&str, usize)] = &[
    ("VOLUME_REGISTRY", 0),
    ("SURFACE_REGISTRY", 1),
    ("MOMENT_REGISTRY", 2),
    ("LBO_REGISTRY", 3),
];

/// Check `generated_dir` (normally `crates/kernels/src/generated/`)
/// against `entries`. `rel_dir` prefixes diagnostic paths.
pub fn check_dir(
    entries: &[ManifestEntry],
    generated_dir: &Path,
    rel_dir: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut file_diag = |file: String, line: usize, message: String| {
        diags.push(Diagnostic {
            file,
            line,
            rule: Rule::Registry,
            severity: Severity::Error,
            message,
        });
    };
    let mod_rel = format!("{rel_dir}/mod.rs");
    let mod_src = match std::fs::read_to_string(generated_dir.join("mod.rs")) {
        Ok(s) => s,
        Err(e) => {
            file_diag(mod_rel, 0, format!("cannot read generated mod.rs: {e}"));
            return diags;
        }
    };

    // Per-entry checks: artifact exists, defines every kernel fn, is
    // include!d, and has a row in its registry table.
    let mut expected_stems: BTreeSet<&str> = BTreeSet::new();
    for entry in entries {
        for stem in entry.stems() {
            expected_stems.insert(stem);
            let fname = format!("{stem}.rs");
            let path = generated_dir.join(&fname);
            let rel = format!("{rel_dir}/{fname}");
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(_) => {
                    file_diag(
                        rel,
                        0,
                        format!(
                            "manifest config `{stem}` has no committed artifact (run \
                             `cargo run -p dg-bench --bin gen_kernel`)"
                        ),
                    );
                    continue;
                }
            };
            for (owner, f) in entry.expected_fns() {
                if owner != *stem {
                    continue;
                }
                if !src.contains(&format!("pub fn {f}(")) {
                    file_diag(rel.clone(), 0, format!("artifact is missing `pub fn {f}`"));
                }
            }
            if !mod_src.contains(&format!("include!(\"{fname}\");")) {
                file_diag(
                    mod_rel.clone(),
                    0,
                    format!("mod.rs does not include! the committed artifact `{fname}`"),
                );
            }
        }
        // Registry rows: one `name: "<stem>"` per table.
        for (table, which) in TABLES {
            let stem = entry.stems()[*which];
            let Some(section) = table_section(&mod_src, table) else {
                file_diag(mod_rel.clone(), 0, format!("mod.rs has no `{table}` table"));
                continue;
            };
            let row = format!("name: \"{stem}\",");
            if !section.contains(&row) {
                file_diag(
                    mod_rel.clone(),
                    0,
                    format!("`{table}` has no row for manifest config `{stem}`"),
                );
            }
        }
    }

    // Orphan registry rows: names in a table with no manifest entry.
    for (table, _) in TABLES {
        if let Some(section) = table_section(&mod_src, table) {
            for name in row_names(section) {
                if !expected_stems.contains(name.as_str()) {
                    file_diag(
                        mod_rel.clone(),
                        0,
                        format!("`{table}` row `{name}` has no manifest entry"),
                    );
                }
            }
        }
    }

    // Orphan includes and artifact files.
    for line in mod_src.lines() {
        let t = line.trim();
        if let Some(f) = t
            .strip_prefix("include!(\"")
            .and_then(|r| r.strip_suffix("\");"))
        {
            let stem = f.strip_suffix(".rs").unwrap_or(f);
            if !expected_stems.contains(stem) && stem != "tests" {
                file_diag(
                    mod_rel.clone(),
                    0,
                    format!("mod.rs includes `{f}`, which no manifest entry produces"),
                );
            }
        }
    }
    if let Ok(rd) = std::fs::read_dir(generated_dir) {
        let mut names: Vec<String> = rd
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for fname in names {
            let Some(stem) = fname.strip_suffix(".rs") else {
                continue;
            };
            if stem == "mod" || stem == "tests" {
                continue;
            }
            if !expected_stems.contains(stem) {
                file_diag(
                    format!("{rel_dir}/{fname}"),
                    0,
                    format!(
                        "orphan generated artifact `{fname}`: no manifest entry produces it \
                         (stale config removed from MANIFEST?)"
                    ),
                );
            }
        }
    }
    diags
}

/// The text of one `pub static <TABLE>: … = &[ … ];` section.
fn table_section<'a>(mod_src: &'a str, table: &str) -> Option<&'a str> {
    let start = mod_src.find(&format!("static {table}:"))?;
    let open = start + mod_src[start..].find("&[")?;
    let close = open + mod_src[open..].find("];")?;
    Some(&mod_src[open..close])
}

/// The `name: "<stem>"` values of a table section.
fn row_names(section: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = section;
    while let Some(p) = rest.find("name: \"") {
        let after = &rest[p + "name: \"".len()..];
        if let Some(end) = after.find('"') {
            names.push(after[..end].to_string());
            rest = &after[end..];
        } else {
            break;
        }
    }
    names
}
