//! Rule family 2: the hot-path allocation lint.
//!
//! The RHS call graph is required to be allocation-free (the dynamic
//! counting-allocator gate in `tests/alloc_free.rs` proves it for the
//! configs it runs; this rule proves the *sources* stay clean for every
//! config). Inside the configured hot-path file set, constructs that
//! heap-allocate are denied. Cold setup code inside hot files (usually
//! constructors) carries an explicit
//! `// dg-analyze: allow(hot_alloc) — <reason>` waiver; `#[cfg(test)]`
//! modules are exempt wholesale.
//!
//! `.clone()` is reported at `warning` severity: textual analysis cannot
//! see types, and cloning a `Range<usize>` is a word copy — the waiver
//! reason is where that subtlety gets documented. CI runs
//! `--deny-warnings`, so un-waived clones still fail the build.

use crate::report::{Diagnostic, Rule, Severity};
use crate::scan::SourceFile;

/// Deny-listed constructs: `(needle, what it does, severity)`.
const DENY: &[(&str, &str, Severity)] = &[
    ("vec!", "`vec![…]` heap-allocates", Severity::Error),
    ("Vec::new", "`Vec::new` creates a growable buffer", Severity::Error),
    (
        "Vec::with_capacity",
        "`Vec::with_capacity` heap-allocates",
        Severity::Error,
    ),
    (".to_vec(", "`.to_vec()` copies into a fresh allocation", Severity::Error),
    (".collect(", "`.collect()` materializes an allocation", Severity::Error),
    (".collect::", "`.collect()` materializes an allocation", Severity::Error),
    ("Box::new", "`Box::new` heap-allocates", Severity::Error),
    ("format!", "`format!` allocates a `String`", Severity::Error),
    ("String::from", "`String::from` allocates", Severity::Error),
    (".to_string(", "`.to_string()` allocates", Severity::Error),
    (".to_owned(", "`.to_owned()` may allocate", Severity::Error),
    (
        ".clone(",
        "`.clone()` on an owned buffer allocates (waive with a reason if the receiver is a cheap `Copy`-like value)",
        Severity::Warning,
    ),
];

/// Is `rel_path` in the hot-path set? The set is the RHS call graph:
/// the kinetic operator and its block-parallel driver, collisions,
/// moments, the Maxwell surface path, every generated kernel, and the
/// telemetry collection layer those sweeps call into.
pub fn is_hot_path(rel_path: &str) -> bool {
    const HOT: &[&str] = &[
        "crates/core/src/vlasov.rs",
        "crates/core/src/blocks.rs",
        "crates/core/src/lbo.rs",
        "crates/core/src/moments.rs",
        "crates/maxwell/src/solver.rs",
        "crates/telemetry/src/collect.rs",
    ];
    // `generated/tests.rs` is the registry's handwritten test module
    // (included under `#[cfg(test)]` from mod.rs), not a kernel.
    HOT.contains(&rel_path)
        || (rel_path.starts_with("crates/kernels/src/generated/")
            && rel_path != "crates/kernels/src/generated/tests.rs")
}

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !is_hot_path(&file.rel_path) {
        return Vec::new();
    }
    check_as_hot(file)
}

/// The body of the rule, path filter already applied (golden-fixture
/// tests call this directly on snippets outside the real hot set).
pub fn check_as_hot(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for &(needle, what, severity) in DENY {
            if let Some(col) = line.code.find(needle) {
                // `vec!` must not match inside an identifier (`Vec::new`
                // inside `MyVec::new_x` would be a different call):
                // require a non-word boundary before word-leading needles.
                // Method needles (`.clone(`) start with `.` and follow
                // their receiver by construction.
                if col > 0 && !needle.starts_with('.') {
                    let b = line.code.as_bytes()[col - 1];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        continue;
                    }
                }
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: li + 1,
                    rule: Rule::HotAlloc,
                    severity,
                    message: format!("{what} in hot-path file (waive cold code with `// dg-analyze: allow(hot_alloc) — <reason>`)"),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_lines, test_mask};

    fn run(src: &str) -> Vec<Diagnostic> {
        let lines = scan_lines(src);
        let in_test = test_mask(&lines);
        check_as_hot(&SourceFile {
            rel_path: "hot.rs".into(),
            lines,
            in_test,
        })
    }

    #[test]
    fn deny_list_fires_and_tests_are_exempt() {
        let d = run(
            "fn f() {\n    let a = vec![0.0; 8];\n    let b: Vec<f64> = x.iter().collect();\n}\n",
        );
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].line, d[1].line), (2, 3));

        let d = run("#[cfg(test)]\nmod tests {\n    fn f() { let a = vec![0]; }\n}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn strings_do_not_fire() {
        let d = run("fn f() { let s = \"vec![0] Box::new format!\"; }\n");
        assert!(d.is_empty());
    }

    #[test]
    fn clone_is_warning_severity() {
        let d = run("fn f() { g(range.clone()); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warning);
    }
}
