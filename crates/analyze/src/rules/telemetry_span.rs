//! Rule family 5: hot-path timing goes through the span API.
//!
//! The telemetry invariant — bit-identical trajectories and a
//! zero-allocation RHS whether collection is on or off — holds because
//! every hot-path measurement goes through [`dg_telemetry`]'s
//! `span!`/`Collector::count` layer: one branch when disabled, two
//! monotonic clock reads when enabled, no allocation either way. A raw
//! `Instant::now()` / `.elapsed()` / `SystemTime` call inside the hot
//! set bypasses that contract (it times unconditionally and invites
//! ad-hoc aggregation), so this rule denies raw clock *reads* in the
//! same file set `hot_alloc` protects. The single blessed site is
//! `now_ns()` in `crates/telemetry/src/collect.rs`, which carries the
//! waiver that documents it.

use crate::report::{Diagnostic, Rule, Severity};
use crate::rules::hot_alloc::is_hot_path;
use crate::scan::SourceFile;

/// Deny-listed clock-read constructs. Mentioning the *types* (imports,
/// struct fields) stays legal — only reads of the ambient clock are
/// denied, since those are what the span API wraps.
const DENY: &[(&str, &str)] = &[
    ("Instant::now", "`Instant::now()` is a raw clock read"),
    (".elapsed(", "`.elapsed()` is a raw clock read"),
    ("SystemTime::now", "`SystemTime::now()` is a raw clock read"),
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !is_hot_path(&file.rel_path) {
        return Vec::new();
    }
    check_as_hot(file)
}

/// The body of the rule, path filter already applied (golden-fixture
/// tests call this directly on snippets outside the real hot set).
pub fn check_as_hot(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        if file.in_test[li] {
            continue;
        }
        for &(needle, what) in DENY {
            if let Some(col) = line.code.find(needle) {
                // Word boundary before `Instant::now` / `SystemTime::now`
                // so e.g. `MyInstant::nowhere` cannot match; method
                // needles start with `.` and follow their receiver.
                if col > 0 && !needle.starts_with('.') {
                    let b = line.code.as_bytes()[col - 1];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        continue;
                    }
                }
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: li + 1,
                    rule: Rule::TelemetrySpan,
                    severity: Severity::Error,
                    message: format!(
                        "{what} in a hot-path file: time through `span!(ws.probe, Phase::…)` \
                         / `now_ns()` so collection stays branch-cheap and disableable \
                         (waive the blessed clock with `// dg-analyze: allow(telemetry_span) — <reason>`)"
                    ),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_lines, test_mask};

    fn run(src: &str) -> Vec<Diagnostic> {
        let lines = scan_lines(src);
        let in_test = test_mask(&lines);
        check_as_hot(&SourceFile {
            rel_path: "hot.rs".into(),
            lines,
            in_test,
        })
    }

    #[test]
    fn raw_clock_reads_fire() {
        let d = run(
            "fn f() {\n    let t = Instant::now();\n    let dt = t.elapsed();\n    let w = SystemTime::now();\n}\n",
        );
        assert_eq!(d.len(), 3);
        assert_eq!((d[0].line, d[1].line, d[2].line), (2, 3, 4));
        assert!(d.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn type_mentions_and_span_api_are_legal() {
        let d = run(
            "use std::time::Instant;\nstatic T: OnceLock<Instant> = OnceLock::new();\nfn f(ws: &Ws) { span!(ws.probe, Phase::Volume); let t = now_ns(); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tests_and_strings_are_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n");
        assert!(d.is_empty());
        let d = run("fn f() { let s = \"Instant::now SystemTime::now\"; }\n");
        assert!(d.is_empty());
    }
}
