//! Rule family 1: the unsafe audit.
//!
//! Every `unsafe` block, `unsafe fn` declaration, and `unsafe impl` must
//! be immediately preceded (same line, or the contiguous comment /
//! attribute block above) by a `// SAFETY:` comment stating why the
//! obligations hold. `pub unsafe fn` must additionally carry a
//! `# Safety` doc section describing the caller contract — the same
//! split clippy enforces via `undocumented_unsafe_blocks` +
//! `missing_safety_doc`; this rule extends it to non-pub `unsafe fn`
//! and runs without compiling.

use crate::report::{Diagnostic, Rule, Severity};
use crate::scan::{find_word, SourceFile};

/// What the `unsafe` keyword introduces.
#[derive(Debug, PartialEq)]
enum Kind {
    Block,
    Fn {
        is_pub: bool,
    },
    Impl,
    /// `unsafe` in type position (`call: unsafe fn(…)`) or other
    /// non-item use — no audit obligation.
    Other,
}

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (li, line) in file.lines.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = find_word(&line.code, "unsafe", from) {
            from = pos + "unsafe".len();
            let kind = classify(file, li, from);
            let needs_doc = matches!(kind, Kind::Fn { is_pub: true });
            let needs_safety = !matches!(kind, Kind::Other);
            if !needs_safety {
                continue;
            }
            let (has_safety, has_safety_doc) = preceding_safety(file, li, pos);
            // For fn declarations a `# Safety` doc section also
            // discharges the comment obligation (the doc *is* the audit).
            let discharged = has_safety || (matches!(kind, Kind::Fn { .. }) && has_safety_doc);
            if !discharged {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: li + 1,
                    rule: Rule::UnsafeAudit,
                    severity: Severity::Error,
                    message: format!(
                        "`unsafe` {} without an immediately preceding `// SAFETY:` comment",
                        match kind {
                            Kind::Block => "block",
                            Kind::Fn { .. } => "fn",
                            Kind::Impl => "impl",
                            Kind::Other => unreachable!(),
                        }
                    ),
                });
            }
            if needs_doc && !has_safety_doc {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: li + 1,
                    rule: Rule::UnsafeAudit,
                    severity: Severity::Error,
                    message: "`pub unsafe fn` without a `# Safety` doc section".into(),
                });
            }
        }
    }
    diags
}

/// Classify the `unsafe` at `(line, after)` by its next meaningful token
/// (scanning forward across lines for signatures split by rustfmt).
fn classify(file: &SourceFile, line: usize, after: usize) -> Kind {
    let mut li = line;
    let mut col = after;
    loop {
        let code = &file.lines[li].code;
        let rest = code[col.min(code.len())..].trim_start();
        if !rest.is_empty() {
            return if rest.starts_with('{') {
                Kind::Block
            } else if let Some(after_fn) = rest.strip_prefix("fn") {
                // `unsafe fn(` is a function-pointer type, not an item.
                if after_fn.trim_start().starts_with('(') {
                    Kind::Other
                } else {
                    Kind::Fn {
                        is_pub: is_pub_before(file, line, "unsafe"),
                    }
                }
            } else if rest.starts_with("impl") || rest.starts_with("trait") {
                Kind::Impl
            } else if rest.starts_with("extern") {
                // `unsafe extern "C" fn name` — treat like a declaration.
                Kind::Fn {
                    is_pub: is_pub_before(file, line, "unsafe"),
                }
            } else {
                Kind::Other
            };
        }
        li += 1;
        col = 0;
        if li >= file.lines.len() {
            return Kind::Other;
        }
    }
}

/// Is the declaration `pub` (the `pub` token preceding `unsafe` on the
/// keyword line)?
fn is_pub_before(file: &SourceFile, line: usize, kw: &str) -> bool {
    let code = &file.lines[line].code;
    match (find_word(code, "pub", 0), find_word(code, kw, 0)) {
        (Some(p), Some(u)) => p < u,
        _ => false,
    }
}

/// Walk the contiguous run of blank / comment-only / attribute lines
/// directly above `line` (plus `line`'s own trailing comment) and report
/// `(saw "SAFETY:", saw doc-comment "# Safety")`.
fn preceding_safety(file: &SourceFile, line: usize, unsafe_col: usize) -> (bool, bool) {
    let mut safety = false;
    let mut safety_doc = false;
    let note = |l: &crate::scan::Line, safety: &mut bool, safety_doc: &mut bool| {
        if l.comment.contains("SAFETY:") {
            *safety = true;
        }
        let c = l.comment.trim_start();
        if (c.starts_with("///") || c.starts_with("//!") || c.starts_with("/**"))
            && l.comment.contains("# Safety")
        {
            *safety_doc = true;
        }
    };
    // Trailing comment on the keyword line itself (common for
    // `unsafe { … } // SAFETY: …` one-liners we still accept), and a
    // preceding comment on the same line (`/* SAFETY: … */ unsafe {`).
    let _ = unsafe_col;
    note(&file.lines[line], &mut safety, &mut safety_doc);
    let mut li = line;
    while li > 0 {
        li -= 1;
        let l = &file.lines[li];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        // Signature continuation lines: `pub unsafe fn` may sit below
        // e.g. a multi-line generic bound — stop at any real code.
        if !code.is_empty() && !is_attr {
            break;
        }
        note(l, &mut safety, &mut safety_doc);
        if code.is_empty() && l.comment.is_empty() {
            // A fully blank line ends the "immediately preceding" run for
            // the SAFETY comment but not for the doc section (rustdoc
            // blocks may be separated from attributes by blank lines).
            break;
        }
    }
    // The `# Safety` doc section may sit further up, above attributes
    // and blank lines, as long as only doc lines intervene.
    if !safety_doc {
        let mut li = line;
        while li > 0 {
            li -= 1;
            let l = &file.lines[li];
            let code = l.code.trim();
            let is_attr = code.starts_with("#[") || code.starts_with("#![");
            if !code.is_empty() && !is_attr {
                break;
            }
            note(l, &mut safety, &mut safety_doc);
        }
    }
    (safety, safety_doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_lines, test_mask};

    fn run(src: &str) -> Vec<Diagnostic> {
        let lines = scan_lines(src);
        let in_test = test_mask(&lines);
        check(&SourceFile {
            rel_path: "x.rs".into(),
            lines,
            in_test,
        })
    }

    #[test]
    fn undocumented_block_fires_documented_passes() {
        let d = run("fn f() {\n    unsafe { g() };\n}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("block"));
        let d =
            run("fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() };\n}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn each_unsafe_impl_needs_its_own_comment() {
        let d = run("// SAFETY: only one.\nunsafe impl Send for A {}\nunsafe impl Sync for A {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn pub_unsafe_fn_needs_safety_doc() {
        let d = run("// SAFETY: caller checks.\npub unsafe fn f() {}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("# Safety"));
        let d = run("/// Does things.\n///\n/// # Safety\n///\n/// Caller must check.\npub unsafe fn f() {}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn fn_pointer_type_position_is_exempt() {
        let d = run("struct J {\n    call: unsafe fn(*const ()),\n}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn private_unsafe_fn_accepts_safety_doc_or_comment() {
        let d =
            run("/// # Safety\n/// ctx must outlive the job.\nunsafe fn call(ctx: *const ()) {}\n");
        assert!(d.is_empty());
        let d = run("unsafe fn call(ctx: *const ()) {}\n");
        assert_eq!(d.len(), 1);
    }
}
