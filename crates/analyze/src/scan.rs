//! Comment- and string-aware Rust source scanner.
//!
//! `dg-analyze` runs in an offline container with no external parser
//! crates, so this module hand-rolls the one lexical distinction every
//! rule needs: *which characters are code, and which are comment or
//! string-literal content*. The scanner produces, per line, a `code`
//! view (comments removed, string/char contents blanked to spaces, the
//! delimiting quotes kept so tokens do not merge) and a `comment` view
//! (the verbatim comment text, `//`/`/*` markers included).
//!
//! Handled: line and doc comments, nested block comments, string
//! literals with escapes, byte strings, raw (byte) strings with any
//! hash count, char literals (escaped and plain), and the char-literal
//! vs. lifetime ambiguity (`'a'` vs. `&'a str`).

/// One source line split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// The verbatim comment text on this line (may span-continue a block
    /// comment opened on an earlier line).
    pub comment: String,
}

impl Line {
    /// True when the line carries no code tokens at all (blank, or
    /// comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A scanned source file: the per-line code/comment split plus the
/// `#[cfg(test)]`-module mask the test-exempt rules consult.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    pub lines: Vec<Line>,
    /// `in_test[i]` is true when line `i + 1` sits inside a
    /// `#[cfg(test)] mod … { … }` region.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    /// Plain or byte string literal.
    Str,
    /// Raw (byte) string literal with the given hash count.
    RawStr(u32),
}

/// Lex `text` into per-line code/comment views.
pub fn scan_lines(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => {
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_open(&chars, i) {
                    // `r"`, `r#"`, `br"`, … — emit the opener verbatim.
                    let open_len = chars[i..].iter().take_while(|&&c| c != '"').count() + 1;
                    for &oc in &chars[i..i + open_len] {
                        cur.code.push(oc);
                    }
                    mode = Mode::RawStr(hashes);
                    i += open_len;
                } else if c == 'b' && next == Some('"') {
                    cur.code.push_str("b\"");
                    mode = Mode::Str;
                    i += 2;
                } else if c == '\'' && !is_ident_tail(chars.get(i.wrapping_sub(1))) {
                    i = lex_quote(&chars, i, &mut cur.code);
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    cur.comment.push_str("*/");
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    cur.comment.push_str("/*");
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if next.is_some() && next != Some('\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

fn is_ident_tail(c: Option<&char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || *c == '_')
}

/// Does a raw (byte) string open at `i`? Returns the hash count.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    // `r` must not be the tail of an identifier (`var"` is invalid Rust
    // anyway, but `let r = …` must lex as code).
    if i > 0 && is_ident_tail(chars.get(i - 1)) {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

/// Lex a `'` in code position: a char literal (contents blanked) or a
/// lifetime (kept verbatim). Returns the index after the consumed text.
fn lex_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    match chars.get(i + 1) {
        // Escaped char literal: '\n', '\'', '\u{…}'.
        Some('\\') => {
            code.push('\'');
            code.push(' ');
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                code.push(' ');
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                code.push('\'');
                j += 1;
            }
            j
        }
        // Plain char literal 'x' (incl. '_', but not the lifetime `'_`).
        Some(_) if chars.get(i + 2) == Some(&'\'') => {
            code.push_str("' '");
            i + 3
        }
        // Lifetime: keep the tick as code.
        _ => {
            code.push('\'');
            i + 1
        }
    }
}

/// Compute the `#[cfg(test)] mod … { … }` mask: the attribute, the `mod`
/// line, and everything through the matching close brace.
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        if code.starts_with("#[cfg(test)]") {
            // Find the mod / fn item the attribute decorates.
            let mut j = i + 1;
            while j < lines.len() && lines[j].is_code_blank() {
                j += 1;
            }
            if j < lines.len() && has_word(&lines[j].code, "mod") {
                if let Some((bl, bc)) = find_char_from(lines, j, 0, '{') {
                    let end = match_brace(lines, bl, bc).unwrap_or(lines.len() - 1);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Does `code` contain `word` as a standalone token?
pub fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word, 0).is_some()
}

/// Find `word` as a standalone token in `code`, starting at byte `from`.
pub fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code[start..].find(word) {
        let p = start + pos;
        let before_ok = p == 0 || !is_word_byte(bytes[p - 1]);
        let after = p + word.len();
        let after_ok = after >= bytes.len() || !is_word_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(p);
        }
        start = p + 1;
    }
    None
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find the first occurrence of `what` in code at or after
/// `(line, col)`; returns `(line, col)`.
pub fn find_char_from(
    lines: &[Line],
    line: usize,
    col: usize,
    what: char,
) -> Option<(usize, usize)> {
    for (li, l) in lines.iter().enumerate().skip(line) {
        let from = if li == line { col } else { 0 };
        if let Some(p) = l.code[from.min(l.code.len())..].find(what) {
            return Some((li, from + p));
        }
    }
    None
}

/// Match the `{` at `(line, col)` to its closing brace; returns the close
/// line index. Comments and strings are already blanked, so plain
/// counting is exact.
pub fn match_brace(lines: &[Line], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (li, l) in lines.iter().enumerate().skip(line) {
        let from = if li == line { col } else { 0 };
        for c in l.code[from.min(l.code.len())..].chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let lines = scan_lines("let x = \"vec![// not code\"; // trailing vec!\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("vec!"));
        assert!(lines[0].code.contains("let x ="));
        assert!(lines[0].comment.contains("trailing vec!"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ still */ code1\nlet s = r#\"hash \"quote\" inside\"#; code2\n";
        let lines = scan_lines(src);
        assert!(lines[0].code.contains("code1"));
        assert!(!lines[0].code.contains('a'));
        assert!(lines[1].code.contains("code2"));
        assert!(!lines[1].code.contains("quote"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = scan_lines("fn f<'a>(x: &'a str) { let c = '}'; let d = '\\''; }\n");
        // The blanked char literals must not unbalance brace matching.
        assert_eq!(
            match_brace(&lines, 0, lines[0].code.find('{').unwrap()),
            Some(0)
        );
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn multiline_string_masks_every_line() {
        let lines = scan_lines("let s = \"line one\nvec![0; 9] unsafe {\";\nlet t = 1;\n");
        assert!(!lines[1].code.contains("vec!"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[2].code.contains("let t"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = scan_lines(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }
}
