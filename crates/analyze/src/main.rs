//! CLI: `dg-analyze [--root <dir>] [--deny-warnings] [--json <path>] [--quiet]`
//!
//! Exit status 0 when the tree is clean (or carries only warnings
//! without `--deny-warnings`), 1 on findings, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    deny_warnings: bool,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny_warnings: false,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--quiet" => args.quiet = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "dg-analyze: workspace invariant linter\n\
                     \n\
                     USAGE: dg-analyze [--root <dir>] [--deny-warnings] [--json <path>] [--quiet]\n\
                     \n\
                     Enforces the four rule families (unsafe_audit, hot_alloc, determinism,\n\
                     registry) over crates/, shims/, src/ and tests/. See DESIGN.md\n\
                     \"Static analysis & invariants\" for the rule catalog and waiver syntax."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dg-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match dg_analyze::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "dg-analyze: no workspace root at or above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match dg_analyze::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dg-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(json) = &args.json {
        if let Some(parent) = json.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(json, report.to_json()) {
            eprintln!("dg-analyze: writing {}: {e}", json.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "dg-analyze: {} files scanned, {} errors, {} warnings{}",
            report.files_scanned,
            report.errors(),
            report.warnings(),
            if args.deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
    }
    if dg_analyze::failed(&report, args.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
