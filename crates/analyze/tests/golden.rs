//! Golden-fixture tests: each rule family must fire on its seeded-bad
//! fixture with the expected diagnostics, waivers must silence a waived
//! fixture completely, and the committed workspace itself must scan
//! clean (the same gate CI runs via `dg-analyze --deny-warnings`).

use dg_analyze::rules::registry::{self, ManifestEntry};
use dg_analyze::{analyze_file, scan_source, Diagnostic, Rule, Severity};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Analyze a fixture under an arbitrary pretend path (hot-path rules key
/// off the relative path, so fixtures can opt in or out of the hot set).
fn analyze_fixture(name: &str, pretend_path: &str) -> (String, Vec<Diagnostic>) {
    let text = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture");
    let file = scan_source(pretend_path, &text);
    (text, analyze_file(&file))
}

/// 1-indexed line of the first line containing `needle`.
fn line_of(text: &str, needle: &str) -> usize {
    text.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("fixture lost its `{needle}` marker"))
        + 1
}

#[test]
fn unsafe_audit_fires_on_seeded_fixture() {
    let (text, diags) = analyze_fixture("bad_unsafe.rs", "crates/demo/src/lib.rs");
    assert!(
        diags.iter().all(|d| d.rule == Rule::UnsafeAudit),
        "{diags:?}"
    );

    let expect = [
        (line_of(&text, "unsafe impl Send for Wrapper"), "impl"),
        (line_of(&text, "unsafe { *p }"), "block"),
        (
            line_of(&text, "pub unsafe fn exposed_undocumented"),
            "`// SAFETY:` comment",
        ),
        (
            line_of(&text, "pub unsafe fn exposed_undocumented"),
            "# Safety",
        ),
        (
            line_of(&text, "pub unsafe fn exposed_half_documented"),
            "# Safety",
        ),
        // A doc comment without `# Safety` discharges neither obligation.
        (
            line_of(&text, "pub unsafe fn exposed_half_documented"),
            "`// SAFETY:` comment",
        ),
    ];
    assert_eq!(diags.len(), expect.len(), "{diags:?}");
    for (line, frag) in expect {
        assert!(
            diags
                .iter()
                .any(|d| d.line == line && d.message.contains(frag)),
            "missing diagnostic at line {line} containing `{frag}`: {diags:?}"
        );
    }
}

#[test]
fn hot_alloc_fires_on_seeded_fixture_inside_hot_set_only() {
    // Analyzed under a hot-path name: the three un-waived allocations in
    // `rhs_step` fire (two errors and the `.clone()` warning); the waived
    // constructor, strings, and `#[cfg(test)]` module stay silent.
    let (text, diags) = analyze_fixture("bad_hot_alloc.rs", "crates/core/src/vlasov.rs");
    assert!(diags.iter().all(|d| d.rule == Rule::HotAlloc), "{diags:?}");
    let expect = [
        (line_of(&text, "vec![0.0; out.len()]"), Severity::Error),
        (line_of(&text, ".collect()"), Severity::Error),
        (line_of(&text, "op.coeff.clone()"), Severity::Warning),
    ];
    assert_eq!(diags.len(), expect.len(), "{diags:?}");
    for (line, sev) in expect {
        assert!(
            diags.iter().any(|d| d.line == line && d.severity == sev),
            "missing {sev:?} at line {line}: {diags:?}"
        );
    }

    // The same fixture outside the hot-path set produces nothing.
    let (_, cold) = analyze_fixture("bad_hot_alloc.rs", "crates/demo/src/cold.rs");
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn telemetry_span_fires_on_seeded_fixture_inside_hot_set_only() {
    let (text, diags) = analyze_fixture("bad_telemetry_span.rs", "crates/core/src/vlasov.rs");
    assert!(
        diags.iter().all(|d| d.rule == Rule::TelemetrySpan),
        "{diags:?}"
    );
    let expect = [
        line_of(&text, "let t0 = Instant::now();"),
        line_of(&text, "let dt = t0.elapsed();"),
        line_of(&text, "let wall = SystemTime::now();"),
    ];
    assert_eq!(diags.len(), expect.len(), "{diags:?}");
    for line in expect {
        assert!(
            diags
                .iter()
                .any(|d| d.line == line && d.severity == Severity::Error),
            "missing diagnostic at line {line}: {diags:?}"
        );
    }

    // The same fixture outside the hot-path set produces nothing.
    let (_, cold) = analyze_fixture("bad_telemetry_span.rs", "crates/demo/src/cold.rs");
    assert!(cold.is_empty(), "{cold:?}");
}

#[test]
fn determinism_fires_on_seeded_fixture() {
    let (text, diags) = analyze_fixture("bad_determinism.rs", "crates/demo/src/lib.rs");
    assert!(
        diags.iter().all(|d| d.rule == Rule::Determinism),
        "{diags:?}"
    );
    let expect = [
        line_of(&text, "for (_k, v) in cache.entries.iter()"),
        line_of(&text, "*total += xs[ctx.index()]"),
    ];
    assert_eq!(diags.len(), expect.len(), "{diags:?}");
    for line in expect {
        assert!(
            diags.iter().any(|d| d.line == line),
            "missing diagnostic at line {line}: {diags:?}"
        );
    }
}

#[test]
fn waived_fixture_is_completely_silent() {
    let (_, diags) = analyze_fixture("clean_waived.rs", "crates/core/src/blocks.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn registry_fires_on_seeded_fixture_dir() {
    let entries = vec![ManifestEntry {
        vol: "demo_vol_1x1v_p1".into(),
        surf: "demo_surf_1x1v_p1".into(),
        mom: "demo_mom_1x1v_p1".into(),
        lbo: "demo_lbo_1x1v_p1".into(),
        cdim: 1,
        vdim: 1,
    }];
    let dir = fixture_dir().join("registry_bad");
    let diags = registry::check_dir(&entries, &dir, "registry_bad");
    assert!(diags.iter().all(|d| d.rule == Rule::Registry), "{diags:?}");

    let expect = [
        // 1. missing artifact for the moment stem
        ("registry_bad/demo_mom_1x1v_p1.rs", "no committed artifact"),
        // 2. committed surf artifact never include!d
        ("registry_bad/mod.rs", "demo_surf_1x1v_p1.rs"),
        // 3. surf registry row missing
        ("registry_bad/mod.rs", "`SURFACE_REGISTRY` has no row"),
        // 4. orphan registry row
        ("registry_bad/mod.rs", "stale_vol_2x2v_p9"),
        // 5. orphan artifact on disk
        (
            "registry_bad/stale_artifact.rs",
            "orphan generated artifact",
        ),
        // 6. surf artifact exists but lacks one expected kernel fn
        (
            "registry_bad/demo_surf_1x1v_p1.rs",
            "demo_surf_1x1v_p1_v0_b4",
        ),
    ];
    for (file, frag) in expect {
        assert!(
            diags
                .iter()
                .any(|d| d.file == file && d.message.contains(frag)),
            "missing diagnostic for {file} containing `{frag}`: {diags:?}"
        );
    }
}

#[test]
fn registry_is_not_waivable() {
    assert!(!Rule::waivable("registry"));
    assert!(!Rule::waivable("waiver"));
    assert!(Rule::waivable("hot_alloc"));
}

#[test]
fn committed_workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    assert!(dg_analyze::looks_like_workspace_root(&root));
    let report = dg_analyze::analyze_root(&root).expect("scan");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "committed tree must be clean:\n{}",
        msgs.join("\n")
    );
}
