// Fixture proving waivers suppress diagnostics: analyzed as a hot-path
// file, expected to produce zero diagnostics (see ../golden.rs).

use std::collections::HashMap;

pub struct Op {
    lookup: HashMap<u64, usize>,
}

// dg-analyze: allow(hot_alloc) — constructor, allocations happen once at setup
pub fn make_op(n: usize) -> Op {
    let mut lookup = HashMap::new();
    for k in 0..n as u64 {
        lookup.insert(k, k as usize);
    }
    Op { lookup }
}

pub fn step(op: &Op, out: &mut [f64], range: std::ops::Range<usize>) {
    for i in range.clone() { // dg-analyze: allow(hot_alloc) — Range clone is a word copy, no heap
        if let Some(&slot) = op.lookup.get(&(i as u64)) {
            out[slot] = 1.0;
        }
    }
    // dg-analyze: allow(determinism) — sums commute here: integer keys, debug-only tally
    for k in op.lookup.keys() {
        std::hint::black_box(k);
    }
}

// SAFETY: fixture impl documented, must not fire.
unsafe impl Send for Op {}
