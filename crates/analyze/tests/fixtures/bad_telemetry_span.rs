//! Seeded-bad fixture for the `telemetry_span` rule: raw clock reads
//! inside a (pretend) hot-path file. Never compiled — scanned only.

use std::time::{Instant, SystemTime};

pub struct Sweep {
    started: Instant, // type mention: legal
}

impl Sweep {
    pub fn rhs_step(&mut self, ws: &mut Workspace) {
        let t0 = Instant::now(); // raw clock read: fires
        do_sweep(ws);
        let dt = t0.elapsed(); // raw clock read: fires
        let wall = SystemTime::now(); // raw clock read: fires
        ws.record(dt, wall);
    }

    pub fn blessed(&self, ws: &Workspace) {
        // dg-analyze: allow(telemetry_span) — fixture's pretend blessed clock
        let t = Instant::now();
        ws.stamp(t);
    }

    pub fn spanned(&self, ws: &mut Workspace) {
        span!(ws.probe, Phase::Volume); // the sanctioned API: silent
        do_sweep(ws);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
