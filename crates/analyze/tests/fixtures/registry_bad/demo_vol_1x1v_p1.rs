pub fn demo_vol_1x1v_p1(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_vol_1x1v_p1_b4(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
