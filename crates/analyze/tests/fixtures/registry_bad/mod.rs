// Seeded-bad generated-module fixture. Against the golden ManifestEntry
// (demo 1x1v config) this directory is wrong in five ways:
//   1. demo_mom_1x1v_p1.rs is not committed at all;
//   2. demo_surf_1x1v_p1.rs is committed but never include!d here;
//   3. SURFACE_REGISTRY has no row for demo_surf_1x1v_p1;
//   4. VOLUME_REGISTRY has an orphan row `stale_vol_2x2v_p9`;
//   5. stale_artifact.rs is committed but no manifest entry produces it.

include!("demo_vol_1x1v_p1.rs");
include!("demo_lbo_1x1v_p1.rs");

pub static VOLUME_REGISTRY: &[Row] = &[
    Row {
        name: "demo_vol_1x1v_p1",
    },
    Row {
        name: "stale_vol_2x2v_p9",
    },
];

pub static SURFACE_REGISTRY: &[Row] = &[];

pub static MOMENT_REGISTRY: &[Row] = &[
    Row {
        name: "demo_mom_1x1v_p1",
    },
];

pub static LBO_REGISTRY: &[Row] = &[
    Row {
        name: "demo_lbo_1x1v_p1",
    },
];
