pub fn stale_vol_2x2v_p9(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
