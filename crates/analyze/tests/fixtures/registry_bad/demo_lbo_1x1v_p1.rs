pub fn demo_lbo_1x1v_p1_drag_vol_v0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_lbo_1x1v_p1_drag_surf_v0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_lbo_1x1v_p1_diff_grad_v0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_lbo_1x1v_p1_diff_vol_v0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_lbo_1x1v_p1_diff_surf_v0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
