pub fn demo_surf_1x1v_p1_x0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_surf_1x1v_p1_x0_b4(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
pub fn demo_surf_1x1v_p1_v0(f: &[f64], out: &mut [f64]) {
    out[0] += f[0];
}
