// Seeded-bad fixture for the `hot_alloc` rule (analyzed as if it were a
// hot-path file; see ../golden.rs).

pub struct Op {
    coeff: Vec<f64>,
}

pub fn rhs_step(op: &Op, out: &mut [f64]) {
    let staging = vec![0.0; out.len()];
    let doubled: Vec<f64> = op.coeff.iter().map(|c| c * 2.0).collect();
    let copy = op.coeff.clone();
    for (o, (s, d)) in out.iter_mut().zip(staging.iter().zip(doubled.iter())) {
        *o = s + d + copy[0];
    }
}

// dg-analyze: allow(hot_alloc) — fixture constructor, waived whole-fn
pub fn make_op(n: usize) -> Op {
    Op {
        coeff: vec![1.0; n],
    }
}

pub fn not_really_allocating() {
    // Deny-list words inside strings or comments must not fire:
    // vec![…] Box::new format!
    let _s = "vec![0] Box::new format!";
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _v = vec![0.0; 8];
    }
}
