// Seeded-bad fixture for the `determinism` rule.

use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u64, f64>,
}

pub fn hash_order_reduction(cache: &Cache) -> f64 {
    let mut total = 0.0;
    // Iteration over a hash-ordered container: fires.
    for (_k, v) in cache.entries.iter() {
        total += v;
    }
    total
}

pub fn keyed_lookup(cache: &Cache, k: u64) -> f64 {
    // Keyed lookups are order-free: must not fire.
    cache.entries.get(&k).copied().unwrap_or(0.0)
}

pub fn worker_accumulation(pool: &rayon::ThreadPool, xs: &[f64], total: &mut f64) {
    pool.broadcast(|ctx| {
        // Scheduler-order float accumulation in a worker closure: fires.
        *total += xs[ctx.index()];
    });
}

pub fn blessed_reduction(pool: &rayon::ThreadPool, partials: &mut [f64]) -> f64 {
    pool.broadcast(|ctx| {
        partials[ctx.index()] = ctx.index() as f64;
    });
    // Block-ordered main-thread reduction: must not fire.
    let mut total = 0.0;
    for p in partials.iter() {
        total += p;
    }
    total
}
