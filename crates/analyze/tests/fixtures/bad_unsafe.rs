// Seeded-bad fixture for the `unsafe_audit` rule. Golden assertions in
// ../golden.rs locate expected diagnostics by the marker identifiers
// below rather than hard-coded line numbers.

pub struct Wrapper(*mut f64);

// An unsafe impl with no safety comment above it: fires.
unsafe impl Send for Wrapper {}

// SAFETY: documented impl, must not fire.
unsafe impl Sync for Wrapper {}

fn undocumented_block(p: *mut f64) -> f64 {
    unsafe { *p }
}

fn documented_block(p: *mut f64) -> f64 {
    // SAFETY: caller guarantees `p` is valid, must not fire.
    unsafe { *p }
}

pub unsafe fn exposed_undocumented(p: *mut f64) -> f64 {
    *p
}

/// Reads through `p`.
///
/// # Safety
///
/// `p` must be valid for reads; must not fire.
pub unsafe fn exposed_documented(p: *mut f64) -> f64 {
    *p
}

/// Doc comment without the safety section: fires the doc-section check.
pub unsafe fn exposed_half_documented(p: *mut f64) -> f64 {
    *p
}

fn not_an_item() {
    // Function-pointer *type* position, must not fire.
    let _f: unsafe fn(*mut f64) -> f64 = exposed_undocumented;
}
