//! `dg-telemetry-validate <telemetry.json>…` — CI schema gate.
//!
//! Exits nonzero (listing the missing keys) when any argument fails
//! [`dg_telemetry::validate_json`]; the examples-smoke workflow runs it
//! against the artifact produced by `DG_TELEMETRY=1` runs.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: dg-telemetry-validate <telemetry.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args {
        match std::fs::read_to_string(path) {
            Ok(text) => match dg_telemetry::validate_json(&text) {
                Ok(()) => println!("{path}: ok ({} bytes)", text.len()),
                Err(missing) => {
                    ok = false;
                    eprintln!("{path}: schema violation, missing keys:");
                    for k in missing {
                        eprintln!("  {k}");
                    }
                }
            },
            Err(e) => {
                ok = false;
                eprintln!("{path}: {e}");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
