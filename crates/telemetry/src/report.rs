//! Cold reporting layer: the dt trace ring, blow-up breadcrumbs, and
//! the schema-stable `telemetry.json` [`RunReport`].
//!
//! JSON is hand-rolled (the container has no serde) with a fixed key
//! order, `{:.17e}` floats, and a `schema` marker — the same contract
//! as `dg_bench::report`, so reports from different runs and ranks
//! diff cleanly. [`validate_json`] checks the full key set and is what
//! CI runs against the smoke-test artifact.

use crate::collect::Snapshot;
use crate::phase::{Counter, Phase};
use std::path::Path;

/// Schema identifier embedded in every report; bump when keys change.
pub const SCHEMA: &str = "dg-telemetry/v1";

/// Capacity of the [`DtRing`] step-size trace.
pub const DT_RING_LEN: usize = 32;

/// Fixed-capacity ring of the most recent accepted step sizes.
///
/// Pushed once per accepted step by the run driver; fixed arrays only,
/// so the hot loop never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DtRing {
    buf: [f64; DT_RING_LEN],
    head: usize,
    len: usize,
}

impl Default for DtRing {
    fn default() -> Self {
        DtRing {
            buf: [0.0; DT_RING_LEN],
            head: 0,
            len: 0,
        }
    }
}

impl DtRing {
    /// Record an accepted dt (evicting the oldest once full).
    #[inline]
    pub fn push(&mut self, dt: f64) {
        self.buf[self.head] = dt;
        self.head = (self.head + 1) % DT_RING_LEN;
        self.len = (self.len + 1).min(DT_RING_LEN);
    }

    /// Number of retained entries (≤ [`DT_RING_LEN`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Most recently pushed dt.
    pub fn last(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.buf[(self.head + DT_RING_LEN - 1) % DT_RING_LEN])
        }
    }

    /// Retained trace, oldest first (cold path; allocates).
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        let start = (self.head + DT_RING_LEN - self.len) % DT_RING_LEN;
        for i in 0..self.len {
            out.push(self.buf[(start + i) % DT_RING_LEN]);
        }
        out
    }
}

/// What the solver was doing when a run blew up: attached (boxed) to
/// `Error::BlowUp` so ensemble retry logs and postmortems are
/// actionable without re-running.
#[derive(Clone, Debug, PartialEq)]
pub struct Breadcrumb {
    /// Recent accepted step sizes, oldest first.
    pub dt_trace: Vec<f64>,
    /// Cumulative phase timings and counters at the blow-up instant.
    pub phases: Snapshot,
}

/// The end-of-run `telemetry.json` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Run label (example name, ensemble job id, bench section).
    pub name: String,
    /// Wall-clock seconds spent inside the run driver.
    pub wall_s: f64,
    /// Steps taken.
    pub steps: u64,
    /// Last accepted dt (0 when no step was taken).
    pub last_dt: f64,
    /// Recent accepted dts, oldest first (≤ [`DT_RING_LEN`] entries).
    pub dt_trace: Vec<f64>,
    /// Writer slots the registry was sized with (1 = serial).
    pub nslots: usize,
    /// Merged phase timings and counters.
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Serialize with the stable v1 schema: fixed key order, `{:.17e}`
    /// floats, every phase and counter present even when zero.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"name\": {},\n", json_str(&self.name)));
        s.push_str(&format!("  \"wall_s\": {:.17e},\n", self.wall_s));
        s.push_str(&format!("  \"steps\": {},\n", self.steps));
        s.push_str(&format!("  \"last_dt\": {:.17e},\n", self.last_dt));
        s.push_str("  \"dt_trace\": [");
        for (i, dt) in self.dt_trace.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{dt:.17e}"));
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"nslots\": {},\n", self.nslots));
        s.push_str("  \"phases\": {\n");
        for (i, p) in Phase::ALL.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"ns\": {}, \"calls\": {}}}{}\n",
                p.name(),
                self.snapshot.phase_ns(*p),
                self.snapshot.phase_calls(*p),
                if i + 1 < Phase::ALL.len() { "," } else { "" }
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"counters\": {\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {}{}\n",
                c.name(),
                self.snapshot.counter(*c),
                if i + 1 < Counter::ALL.len() { "," } else { "" }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Crash-safe write: serialize to `<path>.tmp` in the same
    /// directory, then rename over `path` — a reader never sees a
    /// partial report.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = tmp_path(path);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Rank-ordered reduction of per-rank reports: snapshots merge in
    /// the given (rank) order, wall time is the max across ranks, and
    /// identity fields come from rank 0.
    pub fn merge_ranks(reports: &[RunReport]) -> Option<RunReport> {
        let first = reports.first()?;
        let mut out = first.clone();
        for r in &reports[1..] {
            out.snapshot.merge(&r.snapshot);
            out.wall_s = out.wall_s.max(r.wall_s);
            out.steps = out.steps.max(r.steps);
            out.nslots += r.nslots;
        }
        Some(out)
    }

    /// Human-readable per-phase table (the `DG_TELEMETRY=1` summary
    /// printed by examples).
    pub fn summary_table(&self) -> String {
        let total = self.snapshot.total_ns().max(1);
        let mut s = String::new();
        s.push_str(&format!(
            "telemetry: {} — {} steps, {:.3} s wall, last dt {:.3e}\n",
            self.name, self.steps, self.wall_s, self.last_dt
        ));
        s.push_str(&format!(
            "  {:<16} {:>12} {:>7} {:>12}\n",
            "phase", "time (s)", "%", "calls"
        ));
        for p in Phase::ALL {
            let ns = self.snapshot.phase_ns(p);
            if ns == 0 && self.snapshot.phase_calls(p) == 0 {
                continue;
            }
            s.push_str(&format!(
                "  {:<16} {:>12.6} {:>6.1}% {:>12}\n",
                p.name(),
                ns as f64 * 1e-9,
                100.0 * ns as f64 / total as f64,
                self.snapshot.phase_calls(p)
            ));
        }
        s.push_str(&format!(
            "  {:<16} {:>12.6} {:>6.1}%\n",
            "instrumented",
            total as f64 * 1e-9,
            100.0 * total as f64 / (self.wall_s * 1e9).max(1.0)
        ));
        s.push_str("  counters:");
        for c in Counter::ALL {
            s.push_str(&format!(" {}={}", c.name(), self.snapshot.counter(c)));
        }
        s.push('\n');
        s
    }
}

/// `<path>.tmp` beside `path` (same filesystem, so the rename in
/// [`RunReport::write_atomic`] is atomic).
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Validate a serialized report against the v1 schema: the schema
/// marker, every top-level key, and every phase/counter key must be
/// present. Returns the list of missing keys on failure.
pub fn validate_json(json: &str) -> Result<(), Vec<String>> {
    let mut missing = Vec::new();
    let mut need = |key: String| {
        if !json.contains(&key) {
            missing.push(key);
        }
    };
    need(format!("\"schema\": \"{SCHEMA}\""));
    for k in [
        "name", "wall_s", "steps", "last_dt", "dt_trace", "nslots", "phases", "counters",
    ] {
        need(format!("\"{k}\":"));
    }
    for p in Phase::ALL {
        need(format!("\"{}\":", p.name()));
    }
    for c in Counter::ALL {
        need(format!("\"{}\":", c.name()));
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut snap = Snapshot::default();
        snap.ns[Phase::Volume.idx()] = 1_000_000;
        snap.calls[Phase::Volume.idx()] = 10;
        snap.counters[Counter::RhsEvals.idx()] = 30;
        RunReport {
            name: "sample".into(),
            wall_s: 0.5,
            steps: 10,
            last_dt: 1e-3,
            dt_trace: vec![1e-3, 1e-3],
            nslots: 1,
            snapshot: snap,
        }
    }

    #[test]
    fn dt_ring_evicts_oldest() {
        let mut r = DtRing::default();
        assert!(r.is_empty());
        assert_eq!(r.last(), None);
        for i in 0..(DT_RING_LEN + 3) {
            r.push(i as f64);
        }
        assert_eq!(r.len(), DT_RING_LEN);
        assert_eq!(r.last(), Some((DT_RING_LEN + 2) as f64));
        let v = r.to_vec();
        assert_eq!(v.len(), DT_RING_LEN);
        assert_eq!(v[0], 3.0);
        assert_eq!(*v.last().unwrap(), (DT_RING_LEN + 2) as f64);
    }

    #[test]
    fn report_roundtrips_schema_validation() {
        let json = sample().to_json();
        validate_json(&json).unwrap();
        // Dropping any phase key must fail validation.
        let broken = json.replace("\"volume\":", "\"vol\":");
        assert!(validate_json(&broken).is_err());
    }

    #[test]
    fn write_atomic_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("dg_telemetry_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.json");
        sample().write_atomic(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_json(&text).unwrap();
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_ranks_is_rank_ordered_and_additive() {
        let a = sample();
        let mut b = sample();
        b.name = "rank1".into();
        b.wall_s = 0.7;
        b.snapshot.counters[Counter::RhsEvals.idx()] = 12;
        let m = RunReport::merge_ranks(&[a.clone(), b]).unwrap();
        assert_eq!(m.name, "sample");
        assert_eq!(m.wall_s, 0.7);
        assert_eq!(m.nslots, 2);
        assert_eq!(m.snapshot.counter(Counter::RhsEvals), 42);
        assert!(RunReport::merge_ranks(&[]).is_none());
    }

    #[test]
    fn summary_table_lists_active_phases_only() {
        let t = sample().summary_table();
        assert!(t.contains("volume"));
        assert!(!t.contains("lbo_drag"));
        assert!(t.contains("rhs_evals=30"));
    }
}
