//! The static phase and counter taxonomy.
//!
//! Phases partition the solver's wall time into non-overlapping buckets
//! (the instrumentation places spans at the *leaf* sweep level so no
//! nanosecond is counted twice — see DESIGN.md "Telemetry & run
//! reports" for the placement contract). Counters are monotonically
//! increasing work totals. Both enums are closed: adding a variant is a
//! schema bump for `telemetry.json`, caught by the golden test.

/// One timed phase of the solver. The discriminant indexes the fixed
/// accumulator arrays in [`crate::collect::Slot`], so the enum must
/// stay dense from zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// DG volume integrals over phase-space cells.
    Volume,
    /// Interior configuration- and velocity-space surface fluxes.
    Surface,
    /// LBO drag term (first-order velocity flux).
    LboDrag,
    /// LBO diffusion term (the two LDG passes).
    LboDiff,
    /// Velocity-moment reductions (densities, currents, energies).
    Moments,
    /// The linear Maxwell curl RHS (including perfectly hyperbolic
    /// cleaning terms).
    MaxwellRhs,
    /// Current/charge coupling of the species onto the field RHS
    /// (scratch fills, background charge, source accumulation —
    /// the moment reductions themselves are under [`Phase::Moments`]).
    FieldCoupling,
    /// Wall-ghost synthesis at configuration boundaries.
    Ghosts,
    /// Wall-ledger recording, stage integration, and the block-ordered
    /// ledger reduction.
    Ledger,
    /// dt suggestion and step clamping in the run driver.
    StepControl,
    /// Observer firings (diagnostics, series writers, checkpoints).
    Observers,
    /// Artifact writes owned by the telemetry layer itself
    /// (`telemetry.json`, metrics CSV flushes).
    Io,
}

/// Number of [`Phase`] variants (length of the per-slot timer arrays).
pub const NPHASES: usize = 12;

impl Phase {
    /// All phases in discriminant order.
    pub const ALL: [Phase; NPHASES] = [
        Phase::Volume,
        Phase::Surface,
        Phase::LboDrag,
        Phase::LboDiff,
        Phase::Moments,
        Phase::MaxwellRhs,
        Phase::FieldCoupling,
        Phase::Ghosts,
        Phase::Ledger,
        Phase::StepControl,
        Phase::Observers,
        Phase::Io,
    ];

    /// The array index of this phase.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (the `telemetry.json` key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Volume => "volume",
            Phase::Surface => "surface",
            Phase::LboDrag => "lbo_drag",
            Phase::LboDiff => "lbo_diff",
            Phase::Moments => "moments",
            Phase::MaxwellRhs => "maxwell_rhs",
            Phase::FieldCoupling => "field_coupling",
            Phase::Ghosts => "ghosts",
            Phase::Ledger => "ledger",
            Phase::StepControl => "step_control",
            Phase::Observers => "observers",
            Phase::Io => "io",
        }
    }
}

/// One monotonically increasing work counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Full coupled-RHS evaluations.
    RhsEvals,
    /// Phase-space cells processed by volume sweeps.
    CellsSwept,
    /// Phase-space faces processed by surface sweeps.
    FacesSwept,
    /// Degrees of freedom processed by volume sweeps
    /// (cells × basis coefficients).
    DofProcessed,
    /// dt suggestions rejected (shrunk after a blow-up).
    DtRejections,
    /// Job or segment retries (ensemble retry loop).
    Retries,
}

/// Number of [`Counter`] variants (length of the per-slot counter
/// arrays).
pub const NCOUNTERS: usize = 6;

impl Counter {
    /// All counters in discriminant order.
    pub const ALL: [Counter; NCOUNTERS] = [
        Counter::RhsEvals,
        Counter::CellsSwept,
        Counter::FacesSwept,
        Counter::DofProcessed,
        Counter::DtRejections,
        Counter::Retries,
    ];

    /// The array index of this counter.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (the `telemetry.json` key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::RhsEvals => "rhs_evals",
            Counter::CellsSwept => "cells_swept",
            Counter::FacesSwept => "faces_swept",
            Counter::DofProcessed => "dof_processed",
            Counter::DtRejections => "dt_rejections",
            Counter::Retries => "retries",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_are_dense_and_named() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.idx(), i);
            assert!(!p.name().is_empty());
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Phase::ALL {
            assert_eq!(
                Phase::ALL.iter().filter(|p| p.name() == a.name()).count(),
                1
            );
        }
        for a in Counter::ALL {
            assert_eq!(
                Counter::ALL.iter().filter(|c| c.name() == a.name()).count(),
                1
            );
        }
    }
}
