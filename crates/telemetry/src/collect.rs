//! The hot collection layer: padded per-slot accumulators, the
//! noop-or-active [`Collector`] handle, and RAII [`SpanGuard`] timers.
//!
//! This file is part of the `dg-analyze` hot-path set: nothing here may
//! allocate outside the waived constructors, and all clock reads go
//! through [`now_ns`] (the one waived `Instant` site in the hot set —
//! see the `telemetry_span` rule).
//!
//! Concurrency contract: every writer owns exactly one slot (slot 0 is
//! the main thread / serial path; parallel backends hand slot `1 + b`
//! to block `b`'s workspace), so all atomic traffic is single-writer
//! `Relaxed` on cache-line-padded memory — no contention, no ordering
//! requirements, and *no effect on the simulation state*: telemetry
//! only ever reads clocks and bumps its own accumulators, which is why
//! telemetry-on trajectories are bit-identical to telemetry-off ones.

use crate::phase::{Counter, Phase, NCOUNTERS, NPHASES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide monotonic epoch: all span timestamps are nanoseconds
/// since the first clock read, so timestamps from different slots are
/// directly comparable.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process telemetry epoch.
///
/// The single blessed clock read of the hot set: spans and the run
/// driver both use it, so the `telemetry_span` analyze rule can forbid
/// raw `Instant` use everywhere else on the hot path.
#[inline]
pub fn now_ns() -> u64 {
    // dg-analyze: allow(telemetry_span) — this IS the blessed clock; OnceLock init is a one-time branch, not an allocation
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One writer's accumulator block, padded to two cache lines so
/// adjacent slots never false-share.
#[repr(align(128))]
pub struct Slot {
    ns: [AtomicU64; NPHASES],
    calls: [AtomicU64; NPHASES],
    counters: [AtomicU64; NCOUNTERS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            ns: std::array::from_fn(|_| AtomicU64::new(0)),
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        for a in self.ns.iter().chain(&self.calls).chain(&self.counters) {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Fold this slot into `snap`.
    fn accumulate_into(&self, snap: &mut Snapshot) {
        for (i, a) in self.ns.iter().enumerate() {
            snap.ns[i] += a.load(Ordering::Relaxed);
        }
        for (i, a) in self.calls.iter().enumerate() {
            snap.calls[i] += a.load(Ordering::Relaxed);
        }
        for (i, a) in self.counters.iter().enumerate() {
            snap.counters[i] += a.load(Ordering::Relaxed);
        }
    }
}

/// The shared accumulator table: one padded [`Slot`] per writer.
///
/// Constructed once per run (sized by the backend's
/// `telemetry_slots()`), then handed out as [`Collector`] handles.
pub struct Registry {
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl Registry {
    /// A registry with `nslots` writer slots (at least one).
    // dg-analyze: allow(hot_alloc) — registry construction is cold (once per run)
    pub fn new(nslots: usize) -> Registry {
        Registry {
            slots: (0..nslots.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Number of writer slots.
    pub fn nslots(&self) -> usize {
        self.slots.len()
    }

    /// An active collector writing into `slot` (clamped to the last
    /// slot so a mis-sized backend degrades to contention, never UB).
    pub fn collector(self: &Arc<Self>, slot: usize) -> Collector {
        Collector::Active {
            reg: Arc::clone(self),
            slot: slot.min(self.slots.len() - 1),
        }
    }

    /// Zero every accumulator (bench reuse between sections).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.reset();
        }
    }

    /// Merge all slots in ascending slot order into one [`Snapshot`].
    ///
    /// The order is deterministic by construction; and since the merged
    /// quantities are integer ns/counts, the result is independent of
    /// slot assignment anyway. Allocation-free (fixed arrays).
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for s in self.slots.iter() {
            s.accumulate_into(&mut snap);
        }
        snap
    }

    /// Snapshot of a single slot (per-worker breakdowns).
    pub fn slot_snapshot(&self, slot: usize) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(s) = self.slots.get(slot) {
            s.accumulate_into(&mut snap);
        }
        snap
    }
}

/// A writer handle resolved once at construction, mirroring the
/// `KernelDispatch` pattern: the noop/active decision is a single
/// branch on an enum discriminant at each span/count site, and the
/// noop arm touches no clock and no memory.
#[derive(Clone, Debug, Default)]
pub enum Collector {
    /// Telemetry disabled: spans and counts compile to a discriminant
    /// test.
    #[default]
    Noop,
    /// Telemetry enabled: writes go to `reg.slots[slot]`.
    Active {
        /// The shared accumulator table.
        reg: Arc<Registry>,
        /// This writer's slot index.
        slot: usize,
    },
}

impl Collector {
    /// True when this collector records anything.
    #[inline(always)]
    pub fn is_active(&self) -> bool {
        matches!(self, Collector::Active { .. })
    }

    /// Start a RAII span for `phase`; time accrues until the guard
    /// drops. Noop collectors skip the clock read entirely. The guard
    /// *owns* a registry handle (one refcount bump, no allocation)
    /// rather than borrowing it, so spanning `ws.probe` does not hold a
    /// borrow of the workspace across the timed sweep.
    #[inline(always)]
    pub fn span(&self, phase: Phase) -> SpanGuard {
        match self {
            Collector::Noop => SpanGuard { inner: None },
            Collector::Active { reg, slot } => SpanGuard {
                inner: Some((Arc::clone(reg), *slot, phase, now_ns())),
            },
        }
    }

    /// Add `n` to counter `c`.
    #[inline(always)]
    pub fn count(&self, c: Counter, n: u64) {
        if let Collector::Active { reg, slot } = self {
            reg.slots[*slot].counters[c.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The registry behind an active collector.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        match self {
            Collector::Noop => None,
            Collector::Active { reg, .. } => Some(reg),
        }
    }
}

/// RAII span: created by [`Collector::span`], adds its elapsed ns (and
/// one call) to the owning slot when dropped. No allocation, no clock
/// read on the noop path.
pub struct SpanGuard {
    inner: Option<(Arc<Registry>, usize, Phase, u64)>,
}

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {
        if let Some((reg, slot, phase, start)) = self.inner.take() {
            let dt = now_ns().saturating_sub(start);
            let s = &reg.slots[slot];
            s.ns[phase.idx()].fetch_add(dt, Ordering::Relaxed);
            s.calls[phase.idx()].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Time a lexical scope: `span!(ws.probe, Phase::Volume);` expands to a
/// hygienic RAII guard binding that drops at end of scope. This is the
/// only span API permitted on the hot path (`telemetry_span` rule):
/// it cannot allocate and costs one branch when the collector is noop.
#[macro_export]
macro_rules! span {
    ($collector:expr, $phase:expr) => {
        let _span_guard = $collector.span($phase);
    };
}

/// An additive, `Copy` view of accumulated phase timings and counters.
///
/// Fixed arrays only: snapshots can be taken, merged, and diffed on the
/// hot path without allocating (the `MetricsObserver` diffs successive
/// snapshots to stream per-interval rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Accumulated nanoseconds per phase (indexed by `Phase::idx`).
    pub ns: [u64; NPHASES],
    /// Span count per phase.
    pub calls: [u64; NPHASES],
    /// Counter totals (indexed by `Counter::idx`).
    pub counters: [u64; NCOUNTERS],
}

impl Snapshot {
    /// Nanoseconds accumulated in `phase`.
    #[inline]
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.ns[phase.idx()]
    }

    /// Number of spans recorded for `phase`.
    #[inline]
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.calls[phase.idx()]
    }

    /// Total of counter `c`.
    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }

    /// Sum of all phase timers (the instrumented fraction of the run).
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Add `other` into `self` (commutative, associative — integer
    /// sums, so merge order cannot change the result).
    pub fn merge(&mut self, other: &Snapshot) {
        for i in 0..NPHASES {
            self.ns[i] += other.ns[i];
            self.calls[i] += other.calls[i];
        }
        for i in 0..NCOUNTERS {
            self.counters[i] += other.counters[i];
        }
    }

    /// `self - earlier`, saturating: the activity between two
    /// snapshots of the same registry.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut d = Snapshot::default();
        for i in 0..NPHASES {
            d.ns[i] = self.ns[i].saturating_sub(earlier.ns[i]);
            d.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
        }
        for i in 0..NCOUNTERS {
            d.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_collector_records_nothing() {
        let c = Collector::Noop;
        {
            span!(c, Phase::Volume);
            c.count(Counter::RhsEvals, 3);
        }
        assert!(!c.is_active());
        assert!(c.registry().is_none());
    }

    #[test]
    fn active_spans_and_counts_accumulate() {
        let reg = Arc::new(Registry::new(2));
        let c0 = reg.collector(0);
        let c1 = reg.collector(1);
        {
            span!(c0, Phase::Volume);
            span!(c1, Phase::Surface);
            c0.count(Counter::CellsSwept, 10);
            c1.count(Counter::CellsSwept, 5);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        assert!(snap.phase_ns(Phase::Volume) > 0);
        assert!(snap.phase_ns(Phase::Surface) > 0);
        assert_eq!(snap.phase_calls(Phase::Volume), 1);
        assert_eq!(snap.counter(Counter::CellsSwept), 15);
        assert_eq!(reg.slot_snapshot(0).counter(Counter::CellsSwept), 10);
        assert_eq!(reg.slot_snapshot(1).counter(Counter::CellsSwept), 5);
        reg.reset();
        assert_eq!(reg.snapshot(), Snapshot::default());
    }

    #[test]
    fn collector_slot_is_clamped() {
        let reg = Arc::new(Registry::new(1));
        let c = reg.collector(99);
        c.count(Counter::Retries, 1);
        assert_eq!(reg.snapshot().counter(Counter::Retries), 1);
    }

    #[test]
    fn snapshot_merge_and_delta_are_exact() {
        let mut a = Snapshot::default();
        a.ns[0] = 5;
        a.counters[1] = 7;
        let mut b = Snapshot::default();
        b.ns[0] = 3;
        b.calls[0] = 2;
        b.counters[1] = 1;
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.ns[0], 8);
        assert_eq!(m.calls[0], 2);
        assert_eq!(m.counters[1], 8);
        let d = m.delta(&a);
        assert_eq!(d, b);
        // Delta saturates rather than wrapping.
        assert_eq!(a.delta(&m).ns[0], 0);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
