//! `dg-telemetry` — zero-allocation phase timers, counters, and run
//! reports.
//!
//! The paper's claims are throughput numbers (DOF/s/core, collision
//! cost factors, multi-core speedups), so the solver must be able to
//! account for its own time per phase without perturbing the physics.
//! This crate provides:
//!
//! * a static phase/counter taxonomy ([`Phase`], [`Counter`]) sized at
//!   compile time;
//! * per-writer, cache-line-padded accumulator [`Slot`]s in a shared
//!   [`Registry`], addressed through a [`Collector`] handle that is
//!   resolved to noop-or-active **once at construction** — the same
//!   pattern as `KernelDispatch`, so the disabled cost is one branch;
//! * RAII [`span!`]/[`Collector::span`] guards that never allocate
//!   (gated by `tests/alloc_free.rs` and the `dg-analyze`
//!   `hot_alloc`/`telemetry_span` rules);
//! * cold reporting: [`Snapshot`] merges (deterministic, ascending
//!   slot order), the [`DtRing`] step-size trace, blow-up
//!   [`Breadcrumb`]s, and the schema-stable [`RunReport`]
//!   `telemetry.json` writer.
//!
//! Two invariants hold by construction: telemetry never touches
//! simulation state (trajectories are bit-identical with telemetry on
//! or off at any thread/worker/rank count), and the hot collection
//! layer performs zero heap allocations.

pub mod collect;
pub mod phase;
pub mod report;

pub use collect::{now_ns, Collector, Registry, Slot, Snapshot, SpanGuard};
pub use phase::{Counter, Phase, NCOUNTERS, NPHASES};
pub use report::{validate_json, Breadcrumb, DtRing, RunReport, DT_RING_LEN, SCHEMA};
