//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build container has no crates-io access, so the workspace patches
//! `parking_lot` to this shim (see `shims/README.md`). It covers exactly the
//! surface the workspace uses: a const-constructible [`Mutex`] whose `lock`
//! returns the guard directly (no `Result`), plus an equivalent [`RwLock`].
//! Poisoned locks are recovered transparently — parking_lot has no concept
//! of poisoning, so swallowing it reproduces the upstream semantics.

use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn const_mutex_in_static() {
        let mut g = GLOBAL.lock();
        assert!(g.is_none());
        *g = Some(7);
        drop(g);
        assert_eq!(*GLOBAL.lock(), Some(7));
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
