//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build container has no crates-io access, so the workspace patches
//! `rayon` to this shim (see `shims/README.md`). It covers the surface the
//! parallel layers use — [`ThreadPoolBuilder`] / [`ThreadPool::scope`] /
//! [`Scope::spawn`] / [`ThreadPool::broadcast`] — with real OS-thread
//! parallelism on a pool of **persistent workers**: `build()` spawns
//! `num_threads` threads once, and both `scope` tasks and `broadcast` jobs
//! are dispatched onto them (no per-task thread spawn, so per-cell-block
//! task granularity stays cheap).
//!
//! Two implementation notes that matter to callers:
//!
//! * [`ThreadPool::broadcast`] is **allocation-free** for `R = ()`: the job
//!   is published through a fixed epoch-stamped command slot (mutex +
//!   condvars, no channels — channel sends heap-allocate), which is what
//!   lets the threaded RHS sweep in `dg-core` pass the counting-allocator
//!   gate in `tests/alloc_free.rs`.
//! * [`ThreadPool::scope`] boxes each spawned task (like real rayon); the
//!   caller participates in draining the queue, and nested
//!   [`Scope::spawn`] from inside a task is supported.

use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker count; 0 (the default) resolves to the machine's available
    /// parallelism at `build()` time.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        let workers = (0..n)
            .map(|index| {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_loop(shared, index, n))
                    .expect("spawn pool worker")
            })
            .collect();
        Ok(ThreadPool {
            num_threads: n,
            shared,
            workers,
        })
    }
}

/// A job published to every worker: a type-erased `(context, call)` pair.
/// The context pointer references caller-stack data that outlives the job
/// (the publisher blocks until `remaining == 0`).
#[derive(Clone, Copy)]
struct RawJob {
    ctx: *const (),
    call: unsafe fn(ctx: *const (), index: usize, num_threads: usize),
}

// SAFETY: the pointed-to context is required (by the publishing functions)
// to be Sync and to outlive the job's execution on every worker.
unsafe impl Send for RawJob {}

struct PoolState {
    /// Bumped once per published job so workers run each job exactly once.
    epoch: u64,
    job: Option<RawJob>,
    /// Workers still executing the current job.
    remaining: usize,
    shutdown: bool,
    /// A worker's job panicked; re-raised on the publishing thread.
    panicked: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work_cv: Condvar,
    /// The publisher waits here for `remaining == 0`.
    done_cv: Condvar,
}

fn worker_loop(shared: &'static PoolShared, index: usize, num_threads: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(job) = st.job {
                        seen = st.epoch;
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // SAFETY: the posting thread keeps `job.ctx` alive until every
        // worker has acknowledged this epoch (fixed-broadcast-slot
        // protocol), so the erased pointer is valid for the whole call.
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.call)(job.ctx, index, num_threads)
        }))
        .is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            st.panicked = true;
        }
        // dg-analyze: allow(determinism) — integer completion latch under the pool mutex (counts workers still in this epoch), not a floating-point reduction; order cannot affect the value.
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Pool handle mirroring `rayon::ThreadPool`. Dropping the pool joins its
/// workers.
pub struct ThreadPool {
    num_threads: usize,
    shared: &'static PoolShared,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The leaked PoolShared is intentionally not reclaimed: pools are
        // long-lived (one per backend), and a 'static shared block keeps the
        // worker loop free of lifetime plumbing.
    }
}

/// Per-invocation context handed to a [`ThreadPool::broadcast`] closure.
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    _marker: PhantomData<&'a ()>,
}

impl BroadcastContext<'_> {
    /// This worker's index in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The pool's worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Publish `job` to every worker and return immediately; pair with
    /// [`ThreadPool::wait_done`].
    fn post(&self, job: RawJob) {
        let mut st = self.shared.state.lock().unwrap();
        debug_assert_eq!(st.remaining, 0, "pool already has a job in flight");
        st.epoch += 1;
        st.job = Some(job);
        st.remaining = self.num_threads;
        drop(st);
        self.shared.work_cv.notify_all();
    }

    /// Block until every worker finished the current job; re-raises worker
    /// panics on the calling thread.
    fn wait_done(&self) {
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        let panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        if panicked {
            panic!("a rayon-shim pool task panicked");
        }
    }

    /// Run `op` once on every worker (rayon's `ThreadPool::broadcast`):
    /// blocks until all invocations finish and returns their results in
    /// worker-index order. Allocation-free for `R = ()` — the job travels
    /// through the pool's fixed command slot and results are written in
    /// place.
    pub fn broadcast<OP, R>(&self, op: OP) -> Vec<R>
    where
        OP: Fn(BroadcastContext<'_>) -> R + Sync,
        R: Send,
    {
        let n = self.num_threads;
        let mut results: Vec<R> = Vec::with_capacity(n);
        struct Ctx<OP, R> {
            op: *const OP,
            results: *mut R,
        }
        // SAFETY: callers pass a `ctx` that really points at a live
        // `Ctx<OP, R>` whose `results` buffer has capacity for
        // `num_threads` slots; each worker writes only slot `index`.
        unsafe fn call<OP, R>(ctx: *const (), index: usize, num_threads: usize)
        where
            OP: Fn(BroadcastContext<'_>) -> R + Sync,
            R: Send,
        {
            let ctx = &*(ctx as *const Ctx<OP, R>);
            let r = (*ctx.op)(BroadcastContext {
                index,
                num_threads,
                _marker: PhantomData,
            });
            ctx.results.add(index).write(r);
        }
        let ctx = Ctx::<OP, R> {
            op: &op,
            results: results.as_mut_ptr(),
        };
        self.post(RawJob {
            ctx: &ctx as *const Ctx<OP, R> as *const (),
            call: call::<OP, R>,
        });
        self.wait_done();
        // SAFETY: every worker wrote exactly its own slot (wait_done saw
        // remaining == 0 with no panic; on panic we never reach here).
        unsafe { results.set_len(n) };
        results
    }

    /// Scoped fork-join on the pool's workers: every [`Scope::spawn`] is
    /// executed by a pool worker (or by the calling thread, which drains
    /// the queue too) and joined before `scope` returns, so borrows of
    /// stack data are sound.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
        R: Send,
    {
        let data = ScopeData {
            q: Mutex::new(ScopeQueue {
                tasks: Vec::new(),
                // The caller's own execution of `f` counts as one pending
                // unit, so workers don't see a transiently drained scope.
                pending: 1,
                panicked: false,
            }),
            cv: Condvar::new(),
        };
        // SAFETY: callers pass a `ctx` pointing at the `ScopeData` owned
        // by the enclosing `scope` call, which blocks until `pending`
        // drains to zero — the data outlives every worker's use.
        unsafe fn call_drain(ctx: *const (), _index: usize, _n: usize) {
            drain(&*(ctx as *const ScopeData));
        }
        self.post(RawJob {
            ctx: &data as *const ScopeData as *const (),
            call: call_drain,
        });
        let scope = Scope {
            data: &data,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Close the scope: the caller's pending unit retires, then the
        // caller helps drain until all spawned tasks have run.
        {
            let mut q = data.q.lock().unwrap();
            q.pending -= 1;
            if result.is_err() {
                q.panicked = true;
            }
            if q.pending == 0 && q.tasks.is_empty() {
                drop(q);
                data.cv.notify_all();
            }
        }
        drain(&data);
        // Workers have all returned from call_drain before wait_done
        // returns, so `data` may safely leave the stack afterwards.
        self.wait_done();
        let panicked = data.q.lock().unwrap().panicked;
        match result {
            Ok(r) => {
                if panicked {
                    panic!("a scope task panicked");
                }
                r
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// A queued scope task. The `'static` is a lie told once, in
/// [`Scope::spawn`]: the true lifetime is the scope's `'scope`, and
/// `ThreadPool::scope` blocks until the queue is fully drained before the
/// borrowed data can go away.
type ScopeTask = Box<dyn FnOnce(&ScopeData) + Send + 'static>;

struct ScopeQueue {
    tasks: Vec<ScopeTask>,
    /// Spawned-but-unfinished tasks, plus 1 while the scope closure itself
    /// is still running (it may spawn more).
    pending: usize,
    panicked: bool,
}

struct ScopeData {
    q: Mutex<ScopeQueue>,
    cv: Condvar,
}

/// Run queued scope tasks until none remain and none can appear.
fn drain(data: &ScopeData) {
    loop {
        let task = {
            let mut q = data.q.lock().unwrap();
            loop {
                if let Some(t) = q.tasks.pop() {
                    break Some(t);
                }
                if q.pending == 0 {
                    break None;
                }
                q = data.cv.wait(q).unwrap();
            }
        };
        let Some(task) = task else {
            // Wake any sibling still parked on the queue.
            data.cv.notify_all();
            return;
        };
        let ok = catch_unwind(AssertUnwindSafe(|| task(data))).is_ok();
        let mut q = data.q.lock().unwrap();
        if !ok {
            q.panicked = true;
        }
        q.pending -= 1;
        if q.pending == 0 && q.tasks.is_empty() {
            drop(q);
            data.cv.notify_all();
        }
    }
}

/// Scope handle passed to the `ThreadPool::scope` closure and to every
/// spawned task (rayon's nested-spawn capability).
pub struct Scope<'scope, 'env: 'scope> {
    data: &'scope ScopeData,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let task: Box<dyn FnOnce(&ScopeData) + Send + 'scope> = Box::new(move |data| {
            // SAFETY: `data` is the ScopeData owned by the enclosing
            // ThreadPool::scope frame, which strictly outlives 'scope.
            let data: &'scope ScopeData = unsafe { &*(data as *const ScopeData) };
            let scope = Scope {
                data,
                _env: PhantomData,
            };
            f(&scope)
        });
        // SAFETY: lifetime erasure to queue the task; ThreadPool::scope
        // joins every task before 'scope data can be invalidated.
        let task: ScopeTask = unsafe { std::mem::transmute(task) };
        let mut q = self.data.q.lock().unwrap();
        q.pending += 1;
        q.tasks.push(task);
        drop(q);
        self.data.cv.notify_one();
    }
}

/// Free-standing `rayon::scope`: same API as [`ThreadPool::scope`], on
/// ad-hoc scoped threads (no persistent pool to dispatch to).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&FreeScope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&FreeScope { inner: s }))
}

/// Scope handle of the free-standing [`scope`] (spawns scoped threads).
pub struct FreeScope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for FreeScope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for FreeScope<'scope, 'env> {}

impl<'scope, 'env> FreeScope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&FreeScope<'scope, 'env>) + Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle));
    }
}

/// Two-way fork-join mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    #[test]
    fn scope_joins_all_spawns_and_allows_disjoint_borrows() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut data = vec![0u64; 8];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(2).collect();
        pool.scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        });
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, SeqCst);
                s2.spawn(|_| {
                    counter.fetch_add(1, SeqCst);
                });
            });
        });
        assert_eq!(counter.load(SeqCst), 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn broadcast_runs_once_per_worker_in_index_order() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let results = pool.broadcast(|ctx| {
            assert_eq!(ctx.num_threads(), 3);
            ctx.index() * 10
        });
        assert_eq!(results, vec![0, 10, 20]);
    }

    #[test]
    fn broadcast_allows_disjoint_mutable_chunks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0u64; 13];
        {
            let base = data.as_mut_ptr() as usize;
            let len = data.len();
            pool.broadcast(|ctx| {
                // Strided ownership: worker i owns elements i, i+n, i+2n, …
                let (i, n) = (ctx.index(), ctx.num_threads());
                let mut k = i;
                while k < len {
                    // SAFETY: k ≡ i (mod n), so no two workers touch the
                    // same element; `base` outlives the broadcast.
                    unsafe { *(base as *mut u64).add(k) = k as u64 + 1 };
                    k += n;
                }
            });
        }
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k as u64 + 1);
        }
    }

    #[test]
    fn pool_survives_repeated_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(|_| {
                counter.fetch_add(1, SeqCst);
            });
            pool.scope(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, SeqCst);
                });
            });
        }
        assert_eq!(counter.load(SeqCst), 50 * 2 + 50);
    }

    #[test]
    fn scope_task_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(caught.is_err());
        // The pool remains usable after a task panic.
        let r = pool.broadcast(|ctx| ctx.index());
        assert_eq!(r, vec![0, 1]);
    }
}
