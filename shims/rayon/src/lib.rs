//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build container has no crates-io access, so the workspace patches
//! `rayon` to this shim (see `shims/README.md`). It covers the surface the
//! parallel layer uses — [`ThreadPoolBuilder`] / [`ThreadPool::scope`] /
//! [`Scope::spawn`] — with real OS-thread parallelism built on
//! [`std::thread::scope`]. One deliberate divergence: every `spawn` gets its
//! own scoped thread instead of being queued onto `num_threads` workers.
//! The rank decomposition spawns one task per simulated MPI rank (tens at
//! most), so per-task thread spawn cost is noise next to the per-rank DG
//! sweep, and oversubscription is explicitly allowed by the callers.

use std::fmt;

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded for introspection; see the module docs for why the shim
    /// does not queue onto a fixed worker count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Pool handle mirroring `rayon::ThreadPool`.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The configured thread count (0 = "choose automatically").
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Scoped fork-join: every `Scope::spawn` is joined before `scope`
    /// returns, so borrows of stack data are sound (delegates to
    /// [`std::thread::scope`]).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
        R: Send,
    {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }
}

/// Scope handle passed to the `ThreadPool::scope` closure and to every
/// spawned task (rayon's nested-spawn capability).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle));
    }
}

/// Free-standing `rayon::scope`, same semantics as [`ThreadPool::scope`].
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Two-way fork-join mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_all_spawns_and_allows_disjoint_borrows() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut data = vec![0u64; 8];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(2).collect();
        pool.scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        });
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        let counter = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                s2.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
