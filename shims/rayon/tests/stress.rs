//! Race-safety stress tests for the rayon shim's fixed-broadcast-slot
//! protocol: randomized task-injection order over worker counts 1–8,
//! asserting every spawned task runs exactly once (none lost, none
//! duplicated), plus the panic-in-worker and zero-task edge cases.
//!
//! Accumulation stays in atomics (`fetch_add`), never `+=` inside the
//! worker closures — both because that is the shim's real usage contract
//! and because `dg-analyze`'s determinism rule flags compound float
//! accumulation in worker closures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPoolBuilder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering::Relaxed;

/// Busy-wait jitter so task durations (and hence queue-drain interleaving)
/// vary run to run without any clock dependency.
fn spin(iters: u32) {
    for i in 0..iters {
        std::hint::black_box(i);
    }
}

/// One randomized round: `ntasks` tasks, each injected either directly
/// from the scope closure or nested from inside an already-running worker
/// task (rayon's nested-spawn capability), in shuffled order with random
/// spin jitter. Every task must execute exactly once.
fn exactly_once_round(threads: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ntasks = rng.random_range(0usize..96);
    let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
    let plan: Vec<(bool, u32)> = (0..ntasks)
        .map(|_| (rng.random_range(0u32..3) == 0, rng.random_range(0u32..400)))
        .collect();
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.scope(|s| {
        for (i, &(nested, jitter)) in plan.iter().enumerate() {
            let hits = &hits;
            if nested {
                // Inject from a worker so queue pushes race the scope
                // closure's own pushes.
                s.spawn(move |inner| {
                    spin(jitter);
                    inner.spawn(move |_| {
                        spin(jitter / 2);
                        hits[i].fetch_add(1, Relaxed);
                    });
                });
            } else {
                s.spawn(move |_| {
                    spin(jitter);
                    hits[i].fetch_add(1, Relaxed);
                });
            }
        }
    });
    for (i, h) in hits.iter().enumerate() {
        let n = h.load(Relaxed);
        assert_eq!(
            n, 1,
            "task {i} ran {n} times (threads={threads}, seed={seed}, ntasks={ntasks})"
        );
    }
}

#[test]
fn scope_runs_every_task_exactly_once_across_worker_counts() {
    for threads in 1..=8 {
        for seed in 0..6 {
            exactly_once_round(threads, seed * 1000 + threads as u64);
        }
    }
}

#[test]
fn zero_task_scope_returns_immediately() {
    for threads in 1..=8 {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let r = pool.scope(|_| 42);
        assert_eq!(r, 42);
        // The pool stays usable afterwards.
        let hit = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                hit.fetch_add(1, Relaxed);
            });
        });
        assert_eq!(hit.load(Relaxed), 1);
    }
}

#[test]
fn panic_in_worker_propagates_and_loses_no_sibling_tasks() {
    for threads in 1..=8 {
        let ntasks = 24;
        let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for (i, hit) in hits.iter().enumerate() {
                    s.spawn(move |_| {
                        if i == 7 {
                            panic!("injected worker panic");
                        }
                        hit.fetch_add(1, Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must surface the worker panic");
        for (i, h) in hits.iter().enumerate() {
            let n = h.load(Relaxed);
            if i == 7 {
                assert_eq!(n, 0);
            } else {
                assert_eq!(n, 1, "sibling task {i} ran {n} times (threads={threads})");
            }
        }
        // The pool survives a panicked scope and still joins new work.
        let after = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                after.fetch_add(1, Relaxed);
            });
        });
        assert_eq!(after.load(Relaxed), 1);
    }
}

#[test]
fn broadcast_covers_every_worker_exactly_once_repeatedly() {
    for threads in 1..=8 {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for round in 0..32 {
            let mut indices = pool.broadcast(|ctx| {
                assert_eq!(ctx.num_threads(), threads);
                spin((round * 17) % 200);
                ctx.index()
            });
            indices.sort_unstable();
            let expect: Vec<usize> = (0..threads).collect();
            assert_eq!(
                indices, expect,
                "broadcast round {round} (threads={threads})"
            );
        }
    }
}
