//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build container has no crates-io access, so the workspace patches
//! `criterion` to this shim (see `shims/README.md`). It keeps the
//! `criterion_group!`/`criterion_main!` bench-target shape compiling and
//! gives each benchmark an honest (if statistically modest) measurement:
//! auto-calibrated batch size, `sample_size` timed samples, median /
//! min / max wall-clock per iteration printed one line per benchmark.
//! There are no plots, no significance tests, and no saved baselines —
//! swap the real criterion back in for publishable statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock spent measuring each benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one(id, sample_size, measurement_time, f);
        self
    }
}

/// Benchmark namespace, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

/// Timing handle passed to the measured closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Median / min / max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch costs >= ~200us, so
        // Instant overhead stays under a percent or two.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(200) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measure: `sample_size` batches, capped by measurement_time.
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64 * 1e9);
            if budget.elapsed() > self.measurement_time && samples.len() >= 2 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples[0], samples[samples.len() - 1]));
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => eprintln!(
            "  {label:<48} median {} (min {}, max {})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        ),
        None => eprintln!("  {label:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:7.1} ns")
    } else if ns < 1e6 {
        format!("{:7.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:7.2} ms", ns / 1e6)
    } else {
        format!("{:7.3} s ", ns / 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `fn main` running the named
/// groups. Cargo's `--bench` flag (and any other CLI argument) is accepted
/// and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_self_test");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        g.bench_with_input(BenchmarkId::new("add", 1), &(), |b, _| {
            b.iter(|| black_box(1u64) + black_box(2u64));
        });
        g.finish();
    }

    criterion_group!(self_test_group, trivial);

    #[test]
    fn group_runs_and_measures() {
        self_test_group();
    }

    #[test]
    fn bencher_records_result() {
        let mut b = Bencher {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            result: None,
        };
        b.iter(|| 1 + 1);
        let (median, min, max) = b.result.unwrap();
        assert!(min <= median && median <= max);
        assert!(min > 0.0);
    }
}
