//! Offline stand-in for [`rand`](https://crates.io/crates/rand) (0.9 API).
//!
//! The build container has no crates-io access, so the workspace patches
//! `rand` to this shim (see `shims/README.md`). The workspace only draws
//! uniform `f64`s from a `seed_from_u64`-seeded [`rngs::StdRng`] in tests,
//! so that is the covered surface: [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over `f64`/integer ranges, and [`Rng::random`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the same
//! construction rand's own `SmallRng` uses. It is deterministic for a given
//! seed (all the tests rely on), statistically solid for test data, and
//! explicitly **not** cryptographic (neither is upstream `StdRng` for this
//! use; nothing security-relevant draws from it here).

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling, mirroring the `rand::Rng` methods the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw over a half-open range, `rand 0.9` spelling.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform draw over a type's full/canonical domain (`[0,1)` for f64).
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample_canonical(self)
    }
}

/// Types `Rng::random_range` can produce. Covers the numeric types the
/// workspace samples; extend as call sites appear.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
    fn sample_canonical<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty sampling range");
        let u = unit_f64(rng.next_u64());
        range.start + u * (range.end - range.start)
    }

    fn sample_canonical<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty sampling range");
                let span = range.end.abs_diff(range.start) as u128;
                // Rejection-free modulo draw: a 128-bit product keeps the
                // modulo bias below 2^-64, far past what test data notices.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                range.start.wrapping_add(draw as $t)
            }
            fn sample_canonical<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors (and used by rand).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respected_and_varied() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_half = 0usize;
        for _ in 0..1000 {
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            }
        }
        // Crude uniformity sanity: both halves populated.
        assert!(lo_half > 300 && lo_half < 700, "lo_half={lo_half}");
    }

    #[test]
    fn integer_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k = rng.random_range(0usize..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
