//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! The build container has no crates-io access, so the workspace patches
//! `bytes` to this shim (see `shims/README.md`). The snapshot format reads
//! through advancing `&[u8]` cursors and writes through `Vec<u8>`, so the
//! shim provides the [`Buf`] / [`BufMut`] little-endian accessors on those
//! two impls. Reads panic when the cursor underflows, matching upstream
//! (callers size their slices exactly).

/// Read side of the `bytes` cursor model: consuming little-endian reads
/// that advance the cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side: appending little-endian writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0123_4567_89AB_CDEF);
        v.put_f64_le(-1.25e300);
        let mut cur: &[u8] = &v;
        assert_eq!(cur.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_f64_le(), -1.25e300);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2, 3];
        cur.get_u64_le();
    }
}
