//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build container has no crates-io access, so the workspace patches
//! `proptest` to this shim (see `shims/README.md`). Covered surface: the
//! `proptest!` test macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, integer-range and
//! tuple strategies, `collection::vec`, and `Strategy::prop_map`.
//!
//! Deliberate divergences from upstream: no shrinking (a failing case
//! reports the sampled values via the assertion message but is not
//! minimized), no failure-persistence files, and sampling is fully
//! deterministic — the RNG is seeded from the test function's name, so a
//! failure always reproduces without a persisted seed.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test sampler (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Value source, mirroring `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = self.end().abs_diff(*self.start()) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start().wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length spec for [`vec()`]: a fixed size or a sampled range.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the workspace's property bodies are
        // exact-rational algebra, cheap enough to keep that.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Mirrors `proptest::proptest!`: turns `fn name(arg in strategy, ..)`
/// items into `#[test]` functions that sample and run `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..config.cases {
                let _ = __proptest_case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // The case body runs inside a closure so `prop_assume!`'s
                // early `return` rejects the whole case even when written
                // inside a loop in the body (upstream semantics, where a
                // bare `continue` would only skip that loop's iteration).
                (|| $body)();
            }
        }
    )*};
}

/// Mirrors `prop_assert!` (panics instead of returning `Err`; no shrink
/// phase needs the error value).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `prop_assume!`: a failed assumption rejects the current case
/// (the optional message, used by upstream for rejection stats, is
/// accepted and discarded).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(-20i128..20), &mut rng);
            assert!((-20..20).contains(&v));
            let u = crate::Strategy::sample(&(0u8..3), &mut rng);
            assert!(u < 3);
            let w = crate::Strategy::sample(&(0usize..=4), &mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let strat = collection::vec((0i32..10, 1i32..5), 0..6).prop_map(|v| v.len());
        let mut rng = crate::TestRng::from_name("vec_and_map_compose");
        for _ in 0..100 {
            assert!(crate::Strategy::sample(&strat, &mut rng) < 6);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_shape_works(a in 0i64..100, b in 1i64..100) {
            prop_assume!(a != 0);
            prop_assert!(a * b != 0, "a={a} b={b}");
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_inside_loop_rejects_whole_case(n in 3usize..6) {
            for i in 0..n {
                prop_assume!(i < 2, "rejected at i={}", i);
            }
            // Reached only if every iteration satisfied the assumption —
            // never, since n ≥ 3 guarantees i = 2 occurs. A `continue`
            // expansion would merely skip iterations and fall through.
            panic!("case with n={n} must have been rejected");
        }
    }
}
