//! Collisional relaxation: the Dougherty-LBO operator drives a
//! non-equilibrium distribution to a Maxwellian.
//!
//! Two cold counter-streaming electron beams relax under self-collisions
//! (no fields). The discrete operator conserves density exactly; velocity
//! moments stay near their initial values (the equivalent Maxwellian's
//! parameters), and the L2 distance to that Maxwellian decays
//! monotonically — the paper's footnote-7 collision capability in action.
//! The per-frame report is a time-triggered observer over `app.run`.
//!
//! ```text
//! cargo run --release --example lbo_relaxation
//! ```

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::prelude::*;

fn main() -> Result<(), Error> {
    let nu = 1.0;
    let u_beam: f64 = 1.5;
    let vth_beam = 0.6;
    // Equivalent Maxwellian: n = 1, u = 0, vth² = vth_b² + u_b².
    let vth_eq = (vth_beam * vth_beam + u_beam * u_beam).sqrt();

    let mut app = AppBuilder::new()
        .conf_grid(&[0.0], &[1.0], &[2])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-8.0], &[8.0], &[32])
                .initial(move |_x, v| {
                    maxwellian(0.5, &[u_beam], vth_beam, v)
                        + maxwellian(0.5, &[-u_beam], vth_beam, v)
                })
                .collisions(nu),
        )
        .field(FieldSpec::new(1.0).frozen())
        .build()?;

    // Reference Maxwellian coefficients for the distance diagnostic.
    let eq_app = AppBuilder::new()
        .conf_grid(&[0.0], &[1.0], &[2])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .species(
            SpeciesSpec::new("eq", -1.0, 1.0, &[-8.0], &[8.0], &[32])
                .initial(move |_x, v| maxwellian(1.0, &[0.0], vth_eq, v)),
        )
        .field(FieldSpec::new(1.0).frozen())
        .build()?;
    let (_, mut eq_state) = eq_app.into_parts();
    let f_eq = eq_state.species_f.remove(0);

    let q0 = app.conserved();
    println!(
        "LBO relaxation, ν = {nu}, beams ±{u_beam} (vth {vth_beam}) → Maxwellian vth {vth_eq:.3}"
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "t·ν", "‖f−f_eq‖", "density", "energy"
    );
    app.set_fixed_dt(4e-4);
    let mut last = f64::INFINITY;
    {
        let mut monitor = observe(Trigger::EveryTime(0.5), |fr| {
            let d = fr.state.species_f[0]
                .as_slice()
                .iter()
                .zip(f_eq.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let q = fr.conserved();
            println!(
                "{:>8.2} {:>16.6e} {:>16.10} {:>16.8}",
                fr.time * nu,
                d,
                q.numbers[0],
                q.particle_energy
            );
            // Monotone decay until the discrete-equilibrium floor (the LDG
            // equilibrium differs from the projected Maxwellian at the 1e-4
            // level), where the distance may wiggle within the floor.
            assert!(
                d <= last * (1.0 + 1e-9) + 1e-3,
                "relaxation must be monotone: {last} → {d}"
            );
            last = d;
            Ok(())
        });
        app.run(4.0, &mut [&mut monitor])?;
    }
    let q1 = app.conserved();
    println!(
        "\ndensity drift : {:.3e} (exact up to round-off)",
        ((q1.numbers[0] - q0.numbers[0]) / q0.numbers[0]).abs()
    );
    println!(
        "energy drift  : {:.3e} (boundary-term approximation; see DESIGN.md)",
        ((q1.particle_energy - q0.particle_energy) / q0.particle_energy).abs()
    );
    assert!(((q1.numbers[0] - q0.numbers[0]) / q0.numbers[0]).abs() < 1e-10);
    assert!(
        last < 1e-2,
        "should be essentially at equilibrium, got {last}"
    );
    vlasov_dg::util::emit_telemetry(&app, "lbo_relaxation")?;
    println!("lbo_relaxation OK");
    Ok(())
}
