//! Landau-damping growth-rate sweep through the ensemble service.
//!
//! 64 independent 1X1V Landau-damping configurations spanning
//! `k λ_D ∈ [0.3, 0.6]` run concurrently behind `dg_ensemble`'s typed
//! front door; each job fits the decay rate of its field-energy envelope
//! and the report compares against exact linear-theory rates (tabulated
//! roots of the plasma dispersion relation — the familiar closed-form
//! asymptote `γ ≈ −sqrt(π/8)·k⁻³·exp(−1/(2k²) − 3/2)` is tens of
//! percent off across most of this window, so the exact roots are the
//! honest yardstick). This is the fleet workload the paper's cheap
//! matrix-free kernels make routine: a full dispersion-curve scan as
//! one typed submission.
//!
//! ```text
//! cargo run --release --example landau_sweep
//! ```
//!
//! CI smoke sizes via `SWEEP_JOBS`, `SWEEP_NX`, `SWEEP_NV`, `SWEEP_TEND`,
//! `SWEEP_WORKERS` (the rate-accuracy assertion only arms at publication
//! scale); `SWEEP_OUT` sets an output directory, turning on streamed
//! per-job series, checkpoints, and `report.csv`.

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::diag::fit::{envelope_peaks, growth_rate};
use vlasov_dg::ensemble::SetupFn;
use vlasov_dg::prelude::*;
use vlasov_dg::util::{env_f64, env_usize};

/// Exact linear Landau damping rates γ(k λ_D) in ω_p units: numerically
/// computed roots of the Maxwellian plasma dispersion relation (the
/// standard validation table, e.g. Canosa, J. Comput. Phys. 1973),
/// linearly interpolated between the tabulated wavenumbers.
fn gamma_theory(k: f64) -> f64 {
    const TABLE: [(f64, f64); 8] = [
        (0.25, -0.0022),
        (0.30, -0.0126),
        (0.35, -0.0343),
        (0.40, -0.0661),
        (0.45, -0.1066),
        (0.50, -0.1533),
        (0.55, -0.2081),
        (0.60, -0.2641),
    ];
    assert!(
        (TABLE[0].0..=TABLE[TABLE.len() - 1].0).contains(&k),
        "k = {k} outside the tabulated dispersion-relation window"
    );
    let i = TABLE.iter().rposition(|&(kt, _)| kt <= k).unwrap();
    if i + 1 == TABLE.len() {
        return TABLE[i].1;
    }
    let (k0, g0) = TABLE[i];
    let (k1, g1) = TABLE[i + 1];
    g0 + (g1 - g0) * (k - k0) / (k1 - k0)
}

fn setup(nx: usize, nv: usize) -> std::sync::Arc<SetupFn> {
    std::sync::Arc::new(move |p| {
        let k = p.get("k")?;
        let length = 2.0 * std::f64::consts::PI / k;
        Ok(AppBuilder::new()
            .conf_grid(&[0.0], &[length], &[nx])
            .poly_order(2)
            .basis(BasisKind::Serendipity)
            .species(
                SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[nv])
                    .initial(move |x, v| maxwellian(1.0 + 1e-4 * (k * x[0]).cos(), &[0.0], 1.0, v)),
            )
            .field(FieldSpec::new(10.0).with_poisson_init()))
    })
}

fn main() -> Result<(), Error> {
    let jobs = env_usize("SWEEP_JOBS", 64);
    let nx = env_usize("SWEEP_NX", 16);
    let nv = env_usize("SWEEP_NV", 24);
    let t_end = env_f64("SWEEP_TEND", 20.0);
    let workers = env_usize("SWEEP_WORKERS", 2);
    let full_fidelity = t_end >= 15.0 && nx >= 16 && nv >= 24;
    assert!(jobs >= 2, "SWEEP_JOBS must be at least 2");

    // 64 wavenumbers across the damped branch of the dispersion curve.
    let (k_lo, k_hi) = (0.3, 0.6);
    let ks: Vec<f64> = (0..jobs)
        .map(|i| k_lo + (k_hi - k_lo) * i as f64 / (jobs - 1) as f64)
        .collect();
    let sweep = SweepSpec::new("landau", setup(nx, nv))
        .axis("k", &ks)
        .cfl(0.5)
        .t_end(t_end);

    // The per-job reduction: fit the field-energy envelope exactly like
    // the single-run `landau_damping` example; NaN marks "too few
    // envelope peaks" (shrunk smoke runs).
    let window = (1.0, 0.9 * t_end);
    let mut cfg = EnsembleConfig::new()
        .workers(workers)
        .sample_every(0.05)
        .checkpoint_every_steps(500)
        .summarize(&["gamma", "gamma_theory", "efin"], move |o| {
            let (peak_t, peak_e) = envelope_peaks(o.times, o.field_energy);
            let usable = peak_t
                .iter()
                .filter(|&&t| t >= window.0 && t <= window.1)
                .count();
            let gamma = if usable >= 2 {
                growth_rate(&peak_t, &peak_e, window.0, window.1)
            } else {
                f64::NAN
            };
            let k = o.spec.params().try_get("k").unwrap();
            vec![gamma, gamma_theory(k), *o.field_energy.last().unwrap()]
        });
    if let Ok(dir) = std::env::var("SWEEP_OUT") {
        cfg = cfg.out_dir(dir);
    }

    let mut ensemble = Ensemble::new(cfg)?;
    ensemble.submit_sweep(&sweep)?;
    let report = ensemble.run()?;
    assert_eq!(report.counts(), (jobs, 0, 0), "every sweep job must finish");

    println!(
        "Landau damping sweep: {jobs} jobs, k λ_D ∈ [{k_lo}, {k_hi}], p=2 Serendipity, \
         {nx}×{nv} cells, t_end = {t_end}, {workers} worker(s)"
    );
    println!(
        "  {:>6}  {:>9}  {:>9}  {:>7}",
        "k", "γ fit", "γ theory", "err%"
    );
    let gammas = report.column("gamma")?;
    let theory = report.column("gamma_theory")?;
    let mut fitted = 0usize;
    let mut worst: f64 = 0.0;
    for (i, job) in report.jobs.iter().enumerate() {
        let k = job.params.try_get("k").unwrap();
        let (g, gt) = (gammas[i], theory[i]);
        if g.is_nan() {
            println!("  {k:>6.3}  {:>9}  {gt:>9.4}  {:>7}", "-", "-");
            continue;
        }
        fitted += 1;
        let err = 100.0 * ((g - gt) / gt).abs();
        println!("  {k:>6.3}  {g:>9.4}  {gt:>9.4}  {err:>7.1}");
        if full_fidelity {
            assert!(
                (g - gt).abs() < 0.01,
                "k = {k}: fitted γ = {g} vs theory {gt}"
            );
            worst = worst.max((g - gt).abs());
        }
    }
    if full_fidelity {
        assert!(fitted > 0, "publication-scale sweep must yield rate fits");
        println!("  worst |γ - γ_theory| across the sweep: {worst:.4}");
    } else {
        println!("  (shrunk run: skipping the rate-accuracy assertion)");
    }
    println!("landau_sweep OK");
    Ok(())
}
