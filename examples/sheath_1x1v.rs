//! Plasma sheath between two absorbing walls — the first bounded-domain
//! (non-periodic) end-to-end simulation.
//!
//! Electrons and ions start quasi-neutral and Maxwellian between two
//! absorbing walls (`Bc::Absorb` for both species, which the field solver
//! treats as perfectly conducting boundaries). Electrons out-run the ions
//! to the walls, the bulk charges positive, and a self-consistent sheath
//! potential develops that confines the remaining electrons and
//! accelerates ions outward — the classic wall-loss physics of Juno et
//! al., JCP 2018 (§ sheaths), here in 1X1V with a reduced mass ratio so
//! one shared velocity grid resolves both species.
//!
//! Everything the walls drain is accounted: the [`WallFluxLedger`]
//! balances each species' missing particles against the time-integrated
//! wall flux to round-off (asserted below at every size), and with
//! `SHEATH_RANKS ≥ 2` the identical declaration runs through the
//! rank-parallel backend and must reproduce the serial state bit for bit.
//!
//! ```text
//! cargo run --release --example sheath_1x1v
//! ```
//!
//! CI smoke sizes via `SHEATH_NX`, `SHEATH_NV`, `SHEATH_TEND`,
//! `SHEATH_RANKS`, `SHEATH_THREADS` (intra-rank cell-block workers; with
//! `SHEATH_RANKS ≥ 2` the two compose as ranks × threads).

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::prelude::*;
use vlasov_dg::util::{env_f64, env_usize};

/// Ion/electron mass ratio (reduced so the shared velocity grid resolves
/// the ion thermal width: vth_i = 1/√25 = 0.2 at T_i = T_e).
const MASS_RATIO: f64 = 25.0;

fn build(nx: usize, nv: usize, length: f64, ranks: usize, threads: usize) -> Result<App, Error> {
    let vth_i = (1.0 / MASS_RATIO).sqrt();
    let mut b = AppBuilder::new()
        .conf_grid(&[0.0], &[length], &[nx])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.5)
        // The domain declaration: absorbing walls on both sides. Species
        // default to it; the field derives conducting-wall BCs from it.
        .conf_bc(vec![Bc::Absorb])
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[nv])
                .initial(move |_x, v| maxwellian(1.0, &[0.0], 1.0, v)),
        )
        .species(
            SpeciesSpec::new("ion", 1.0, MASS_RATIO, &[-6.0], &[6.0], &[nv])
                .initial(move |_x, v| maxwellian(1.0, &[0.0], vth_i, v)),
        )
        // Electrostatic limit: fast light speed, electric divergence
        // cleaning keeps Gauss's law coupled to the evolving charge.
        .field(FieldSpec::new(5.0).cleaning(1.0, 0.0));
    if ranks >= 2 {
        b = b.backend(RankParallel { ranks, threads });
    } else if threads > 1 {
        b = b.threads(threads);
    }
    b.build()
}

/// Sheath potential: φ(center) − φ(wall) = −∫_wall^center E_x dx, from the
/// cell-mean E_x of the final state (left half of the domain).
fn sheath_potential(app: &App) -> f64 {
    let system = app.system();
    let grid = &system.maxwell.grid;
    let nc = system.maxwell.nc();
    let c0 = vlasov_dg::basis::expand::const_coeff(&system.maxwell.basis);
    let dx = grid.dx()[0];
    let half = grid.len() / 2;
    let mut integral = 0.0;
    for cell in 0..half {
        let ex_mean = app.state().em.cell(cell)[..nc][0] / c0;
        integral += ex_mean * dx;
    }
    -integral
}

fn main() -> Result<(), Error> {
    let nx = env_usize("SHEATH_NX", 24);
    let nv = env_usize("SHEATH_NV", 64);
    let t_end = env_f64("SHEATH_TEND", 5.0);
    let ranks = env_usize("SHEATH_RANKS", 1);
    let threads = env_usize("SHEATH_THREADS", 2);
    let length = 10.0;
    let full_fidelity = t_end >= 4.0 && nx >= 16 && nv >= 48;

    let mut app = build(nx, nv, length, ranks, threads)?;
    let mut ledger = WallFluxLedger::every(0.1);
    let mut history = EnergyHistory::every(0.1);
    app.run(t_end, &mut [&mut ledger, &mut history])?;

    let backend = app.backend_name();
    println!(
        "sheath_1x1v: {nx}×{nv} cells, p=2, m_i/m_e = {MASS_RATIO}, t_end = {t_end} \
         [{backend}, {ranks} rank(s) × {threads} thread(s)]"
    );
    let elc_lost = -ledger.net_mass(0);
    let ion_lost = -ledger.net_mass(1);
    let elc_energy = -ledger.net_energy(0);
    let ion_energy = -ledger.net_energy(1);
    println!("  wall losses: elc {elc_lost:.6e} particles / {elc_energy:.6e} energy");
    println!("               ion {ion_lost:.6e} particles / {ion_energy:.6e} energy");
    let balance = ledger.mass_balance_error();
    println!("  ledger mass balance error = {balance:.3e}");
    let phi = sheath_potential(&app);
    println!("  sheath potential (center − wall) = {phi:.4}  [T_e/e units]");

    // The bounded-domain conservation law: what the domain lost is what
    // the ledger integrated through the walls — at every size.
    assert!(
        balance < 1e-12,
        "wall-ledger mass balance violated: {balance:.3e}"
    );
    assert!(
        elc_lost > 0.0 && ion_lost > 0.0,
        "absorbing walls must drain both species"
    );

    if ranks >= 2 {
        // The identical declaration through the single-threaded serial
        // backend must match the ranks × threads trajectory bit for bit,
        // ledger included.
        let mut twin = build(nx, nv, length, 1, 1)?;
        let mut twin_ledger = WallFluxLedger::every(0.1);
        let mut twin_history = EnergyHistory::every(0.1);
        twin.run(t_end, &mut [&mut twin_ledger, &mut twin_history])?;
        for s in 0..2 {
            assert_eq!(
                app.state().species_f[s].as_slice(),
                twin.state().species_f[s].as_slice(),
                "species {s}: rank-parallel trajectory diverged from serial"
            );
        }
        assert_eq!(
            app.state().em.as_slice(),
            twin.state().em.as_slice(),
            "EM trajectory diverged from serial"
        );
        assert_eq!(
            ledger.samples, twin_ledger.samples,
            "wall ledgers diverged between backends"
        );
        println!("  rank-parallel ({ranks} ranks) bit-identical to serial ✓");
    }

    if full_fidelity {
        // Theory anchor: the floating-sheath potential of a Maxwellian
        // plasma is e φ/T_e = ln √(m_i / 2π m_e) ≈ 0.69 at this mass
        // ratio; the transient run should land in its neighbourhood.
        assert!(
            (0.3..2.0).contains(&phi),
            "sheath potential should confine electrons (got {phi:.3}, theory ≈ 0.69)"
        );
        assert!(
            elc_lost > ion_lost,
            "the net electron excess is what charges the sheath: elc {elc_lost:.3} vs ion {ion_lost:.3}"
        );
        // Confinement: once the potential stands, the electron loss rate
        // must fall well below the initial free-streaming rate.
        let rate = |l: &WallFluxLedger, a: usize, b: usize| {
            let (sa, sb) = (&l.samples[a], &l.samples[b]);
            -(sb.totals[0].net_mass() - sa.totals[0].net_mass()) / (sb.time - sa.time)
        };
        let n = ledger.samples.len();
        let early = rate(&ledger, 1, 3);
        let late = rate(&ledger, n - 3, n - 1);
        println!("  elc loss rate: early {early:.3e} → late {late:.3e}");
        assert!(
            late < 0.5 * early,
            "sheath should throttle electron losses: {early:.3e} → {late:.3e}"
        );
    } else {
        println!("  (shrunk run: skipping the sheath-physics assertions)");
    }
    vlasov_dg::util::emit_telemetry(&app, "sheath_1x1v")?;
    println!("sheath_1x1v OK");
    Ok(())
}
