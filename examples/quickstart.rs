//! Quickstart: a 1X1V electron Langmuir-oscillation run in ~40 lines.
//!
//! Builds the smallest meaningful Vlasov–Maxwell simulation — one electron
//! species with a sinusoidal density perturbation over a neutralizing ion
//! background — drives it through `app.run` with an energy-history
//! observer, and prints the conserved-quantity report. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::prelude::*;

fn main() -> Result<(), Error> {
    let k = 0.5; // k λ_D for vth = 1
    let length = 2.0 * std::f64::consts::PI / k;

    let mut app = AppBuilder::new()
        .conf_grid(&[0.0], &[length], &[16])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.6)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[24])
                .initial(move |x, v| maxwellian(1.0 + 0.05 * (k * x[0]).cos(), &[0.0], 1.0, v)),
        )
        .field(FieldSpec::new(10.0).with_poisson_init())
        .build()?;

    let q0 = app.conserved();
    println!("t = 0  [backend: {}]", app.backend_name());
    println!("  particles      : {:.12}", q0.numbers[0]);
    println!("  kinetic energy : {:.12}", q0.particle_energy);
    println!("  field energy   : {:.6e}", q0.field_energy);

    // The run driver samples the conserved quantities every 0.5 ωₚ⁻¹.
    let mut history = EnergyHistory::every(0.5);
    app.run(5.0, &mut [&mut history])?;

    let q1 = app.conserved();
    println!("t = {:.2} ({} steps)", app.time(), app.steps_taken());
    println!("  particles      : {:.12}", q1.numbers[0]);
    println!("  kinetic energy : {:.12}", q1.particle_energy);
    println!("  field energy   : {:.6e}", q1.field_energy);
    println!(
        "  mass drift     : {:.3e} (exact conservation: round-off only)",
        history.mass_drift()
    );
    println!("  energy drift   : {:.3e}", history.energy_drift());

    // The field energy must oscillate at ~2 ω_p while Landau-damping away.
    assert!(q1.field_energy > 0.0, "field should be active");
    assert!(history.mass_drift() < 1e-10, "mass must be conserved");
    vlasov_dg::util::emit_telemetry(&app, "quickstart")?;
    println!("quickstart OK");
    Ok(())
}
