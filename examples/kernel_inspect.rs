//! Print the Fig. 1 artifact: the auto-generated, fully unrolled volume
//! kernel for 1X2V, p = 1, tensor basis — plus its operation-count audit
//! against the quadrature (nodal) pipeline.
//!
//! ```text
//! cargo run --release --example kernel_inspect
//! ```

use vlasov_dg::basis::BasisKind;
use vlasov_dg::kernels::codegen::{count_update_statements, volume_kernel_source};
use vlasov_dg::kernels::ops::nodal_mult_estimate;
use vlasov_dg::kernels::{kernels_for, PhaseLayout};

fn main() {
    let pk = kernels_for(BasisKind::Tensor, PhaseLayout::new(1, 2), 1);
    let src = volume_kernel_source(&pk, "vlasov_vol_1x2v_p1_tensor");

    println!("// ===== Fig. 1: generated volume kernel (Rust) =====");
    println!("{src}");

    let report = pk.op_report();
    let statements = count_update_statements(&src);
    println!("// ===== operation audit =====");
    println!("// Np = {} (tensor p=1, 1X2V)", report.np);
    println!("// volume update statements      : {statements}");
    println!(
        "// modal multiplications (volume): {}",
        report.streaming_volume + report.accel_volume
    );
    println!(
        "// modal α-assembly              : {}",
        report.alpha_assembly
    );
    println!("// modal surface                 : {}", report.surface);
    println!("// modal total per cell          : {}", report.total());
    // Alias-free quadrature for p=1 needs 2 points/dim ⇒ Nq = 8 volume,
    // 4 per face.
    let nodal = nodal_mult_estimate(report.np, 8, 4, 3);
    println!("// nodal (quadrature) estimate   : {nodal}");
    println!(
        "// modal / nodal                 : {:.2}×  (paper: ~70 vs ~250 for the volume term)",
        nodal as f64 / report.total() as f64
    );
}
