//! Two-stream instability: growth rate against linear theory.
//!
//! Two symmetric counter-streaming electron beams (drift ±u, total
//! density 1) drive the classic electrostatic two-stream instability. For
//! cold beams the fastest-growing mode sits at `k u = √(3/8) ω_p` with
//! `γ = ω_p / √8 ≈ 0.3536` — a closed-form anchor the kinetic run must
//! approach when the beams are cold enough (`vth ≪ u`). This exercises the
//! full nonlinear field–particle coupling the paper's alias-free kernels
//! protect: an aliased scheme fails this test by either misplacing the
//! growth or blowing up (see the `ablation_aliasing` bench).
//!
//! ```text
//! cargo run --release --example two_stream
//! ```

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::diag::fit::growth_rate;
use vlasov_dg::prelude::*;

fn main() -> Result<(), Error> {
    let u = 3.0;
    let gamma_theory = 1.0 / (8.0f64).sqrt();
    let k = (3.0f64 / 8.0).sqrt() / u; // fastest-growing mode
    let length = 2.0 * std::f64::consts::PI / k;
    let vth = 0.3;

    let mut app = AppBuilder::new()
        .conf_grid(&[0.0], &[length], &[16])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.6)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-8.0], &[8.0], &[48]).initial(move |x, v| {
                let pert = 1.0 + 1e-5 * (k * x[0]).cos();
                pert * (maxwellian(0.5, &[u], vth, v) + maxwellian(0.5, &[-u], vth, v))
            }),
        )
        .field(FieldSpec::new(10.0).with_poisson_init())
        .build()?;

    let mut times = Vec::new();
    let mut energies = Vec::new();
    let t_end = 25.0;
    {
        let mut sampler = observe(Trigger::EveryTime(0.25), |fr| {
            times.push(fr.time);
            energies.push(fr.field_energy());
            Ok(())
        });
        app.run(t_end, &mut [&mut sampler])?;
    }

    // Linear phase: once the field has grown clear of the initial
    // transient but well before trapping saturates it.
    let gamma = growth_rate(&times, &energies, 5.0, 18.0);
    println!("Two-stream instability, u = ±{u}, vth = {vth}, k u/ω_p = 0.612");
    println!("  fitted γ/ω_p = {gamma:+.4}");
    println!("  cold theory  = {gamma_theory:+.4}");
    println!(
        "  relative error = {:.1}% (warm-beam correction expected)",
        100.0 * ((gamma - gamma_theory) / gamma_theory).abs()
    );
    let q = app.conserved();
    println!("  field energy at t={t_end}: {:.4e}", q.field_energy);

    assert!(gamma > 0.2, "two-stream must grow, got γ = {gamma}");
    assert!(
        (gamma - gamma_theory).abs() < 0.15 * gamma_theory.abs() + 0.02,
        "growth rate far from cold-beam theory: {gamma} vs {gamma_theory}"
    );
    vlasov_dg::util::emit_telemetry(&app, "two_stream")?;
    println!("two_stream OK");
    Ok(())
}
