//! Landau damping: the canonical kinetic benchmark.
//!
//! A Maxwellian electron plasma with a small density perturbation at
//! `k λ_D = 0.5` supports a Langmuir wave that damps collisionlessly at the
//! Landau rate γ ≈ −0.1533 ω_p (Vlasov–Poisson linear theory) with real
//! frequency ω ≈ 1.4156 ω_p. This example runs the 1X1V Vlasov–Maxwell
//! system (electrostatic limit: large c), fits the decay of the field-energy
//! envelope, and compares against theory — the kind of delicate
//! field–particle resonance the paper's alias-free construction exists to
//! protect.
//!
//! ```text
//! cargo run --release --example landau_damping
//! ```

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::diag::fit::{envelope_peaks, growth_rate};
use vlasov_dg::prelude::*;

fn main() -> Result<(), String> {
    let k = 0.5;
    let length = 2.0 * std::f64::consts::PI / k;
    let gamma_theory = -0.1533;

    let mut app = AppBuilder::new()
        .conf_grid(&[0.0], &[length], &[24])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.5)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[32])
                .initial(move |x, v| maxwellian(1.0 + 1e-4 * (k * x[0]).cos(), &[0.0], 1.0, v)),
        )
        .field(FieldSpec::new(10.0).with_poisson_init())
        .build()?;

    let mut times = Vec::new();
    let mut energies = Vec::new();
    let t_end = 20.0;
    let sample_dt = 0.05;
    while app.time() < t_end {
        app.advance_by(sample_dt)?;
        times.push(app.time());
        energies.push(app.field_energy());
    }

    // Fit the envelope of the oscillating field energy.
    let (peak_t, peak_e) = envelope_peaks(&times, &energies);
    let gamma = growth_rate(&peak_t, &peak_e, 1.0, 18.0);
    println!("Landau damping, k λ_D = 0.5, p=2 Serendipity, 24×32 cells");
    println!("  fitted   γ/ω_p = {gamma:+.4}");
    println!("  theory   γ/ω_p = {gamma_theory:+.4}");
    println!(
        "  relative error = {:.1}%",
        100.0 * ((gamma - gamma_theory) / gamma_theory).abs()
    );
    let q = app.conserved();
    println!("  mass drift     = {:.3e}", {
        // single sample: report field/particle balance instead
        q.field_energy / q.particle_energy
    });

    assert!(
        (gamma - gamma_theory).abs() < 0.02,
        "Landau damping rate off: {gamma} vs {gamma_theory}"
    );
    println!("landau_damping OK");
    Ok(())
}
