//! Landau damping: the canonical kinetic benchmark.
//!
//! A Maxwellian electron plasma with a small density perturbation at
//! `k λ_D = 0.5` supports a Langmuir wave that damps collisionlessly at the
//! Landau rate γ ≈ −0.1533 ω_p (Vlasov–Poisson linear theory) with real
//! frequency ω ≈ 1.4156 ω_p. This example runs the 1X1V Vlasov–Maxwell
//! system (electrostatic limit: large c), fits the decay of the field-energy
//! envelope, and compares against theory — the kind of delicate
//! field–particle resonance the paper's alias-free construction exists to
//! protect.
//!
//! ```text
//! cargo run --release --example landau_damping
//! ```
//!
//! CI smoke sizes via `LANDAU_NX`, `LANDAU_NV`, `LANDAU_TEND` (the
//! rate-accuracy assertion only arms at publication scale);
//! `LANDAU_THREADS` runs the identical declaration on the intra-rank
//! cell-block worker pool (bit-identical by construction — the
//! conservation assertions hold unchanged at every thread count).

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::diag::fit::{envelope_peaks, growth_rate};
use vlasov_dg::prelude::*;
use vlasov_dg::util::{env_f64, env_usize};

fn main() -> Result<(), Error> {
    let k = 0.5;
    let length = 2.0 * std::f64::consts::PI / k;
    let gamma_theory = -0.1533;
    let nx = env_usize("LANDAU_NX", 24);
    let nv = env_usize("LANDAU_NV", 32);
    let t_end = env_f64("LANDAU_TEND", 20.0);
    let threads = env_usize("LANDAU_THREADS", 1);
    let full_fidelity = t_end >= 15.0 && nx >= 16 && nv >= 24;

    let mut b = AppBuilder::new()
        .conf_grid(&[0.0], &[length], &[nx])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.5)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[nv])
                .initial(move |x, v| maxwellian(1.0 + 1e-4 * (k * x[0]).cos(), &[0.0], 1.0, v)),
        )
        .field(FieldSpec::new(10.0).with_poisson_init());
    if threads > 1 {
        b = b.threads(threads);
    }
    let mut app = b.build()?;

    // One observer does it all: the history records the full conserved-
    // quantity probe every 0.05 ωₚ⁻¹, and the envelope fit reads the
    // field-energy series straight off it.
    let mut history = EnergyHistory::every(0.05);
    app.run(t_end, &mut [&mut history])?;
    let times = history.times();
    let energies = history.field_energy();

    // Fit the envelope of the oscillating field energy (needs at least two
    // envelope peaks inside the fit window — shrunk smoke runs may not
    // have them).
    let (peak_t, peak_e) = envelope_peaks(&times, &energies);
    let window = (1.0, 0.9 * t_end);
    let usable_peaks = peak_t
        .iter()
        .filter(|&&t| t >= window.0 && t <= window.1)
        .count();
    let gamma = (usable_peaks >= 2).then(|| growth_rate(&peak_t, &peak_e, window.0, window.1));
    println!(
        "Landau damping, k λ_D = 0.5, p=2 Serendipity, {nx}×{nv} cells, t_end = {t_end}, \
         {threads} thread(s)"
    );
    match gamma {
        Some(g) => {
            println!("  fitted   γ/ω_p = {g:+.4}");
            println!("  theory   γ/ω_p = {gamma_theory:+.4}");
            println!(
                "  relative error = {:.1}%",
                100.0 * ((g - gamma_theory) / gamma_theory).abs()
            );
        }
        None => println!(
            "  (too few envelope peaks in t ∈ [{}, {}] for a rate fit)",
            window.0, window.1
        ),
    }
    let q = app.conserved();
    println!("  mass drift     = {:.3e}", history.mass_drift());
    println!(
        "  field/particle energy ratio = {:.3e}",
        q.field_energy / q.particle_energy
    );

    assert!(
        history.mass_drift() < 1e-10,
        "mass must be conserved to round-off, drift {:.3e}",
        history.mass_drift()
    );
    if full_fidelity {
        let gamma = gamma.expect("publication-scale run must yield an envelope fit");
        assert!(
            (gamma - gamma_theory).abs() < 0.02,
            "Landau damping rate off: {gamma} vs {gamma_theory}"
        );
    } else {
        println!("  (shrunk run: skipping the rate-accuracy assertion)");
    }
    vlasov_dg::util::emit_telemetry(&app, "landau_damping")?;
    println!("landau_damping OK");
    Ok(())
}
