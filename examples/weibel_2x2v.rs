//! Counter-streaming beams in 2X2V — the paper's Fig. 5 simulation.
//!
//! An electron–proton plasma whose electrons form two counter-streaming
//! beams (±u along y) is unstable to the zoo of two-stream, filamentation,
//! and hybrid oblique modes (§V; Skoutnev et al. 2019). The run converts
//! beam kinetic energy → electromagnetic energy → thermal spread, and the
//! phase-space slices (`y–v_y`, `v_x–v_y`) show the structure a continuum
//! method resolves noise-free.
//!
//! Everything rides on the run driver: the energy history, the streaming
//! field-energy CSV, the begin/end slice panels, and the
//! nonlinear-saturation detector are all trigger-scheduled observers.
//!
//! Defaults are container-sized; scale with environment variables for the
//! full paper-like run, and pick the execution backend the same way:
//!
//! ```text
//! WEIBEL_NX=16 WEIBEL_NV=16 WEIBEL_TEND=60 cargo run --release --example weibel_2x2v
//! WEIBEL_RANKS=4 WEIBEL_THREADS=4 cargo run --release --example weibel_2x2v
//! ```
//!
//! Writes `weibel_history.csv`, `field_energy.csv` and slice CSVs into
//! `target/weibel/`.

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::diag::{csv::write_grid_csv, slices::slice_2d, EnergyHistory};
use vlasov_dg::prelude::*;
use vlasov_dg::util::{env_f64, env_usize};

fn main() -> Result<(), Error> {
    let nx = env_usize("WEIBEL_NX", 8);
    let nv = env_usize("WEIBEL_NV", 8);
    let t_end = env_f64("WEIBEL_TEND", 20.0);
    let ranks = env_usize("WEIBEL_RANKS", 0);
    let u = 0.3; // beam drift (c = 1)
    let vth = 0.1;
    let mass_ratio = 1836.0;
    // Box sized to a few unstable wavelengths of the filamentation branch.
    let l = 2.0 * std::f64::consts::PI / 0.4;

    let mut builder = AppBuilder::new()
        .conf_grid(&[0.0, 0.0], &[l, l], &[nx, nx])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.8)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-1.2, -1.2], &[1.2, 1.2], &[nv, nv]).initial(
                move |x, v| {
                    // Counter-streaming beams along v_y, seeded with small
                    // multi-mode spatial noise (deterministic phases).
                    let kx = 2.0 * std::f64::consts::PI / l;
                    let seed = 1.0
                        + 1e-3
                            * ((kx * x[0]).cos() + (kx * x[1]).cos() + (kx * (x[0] + x[1])).sin());
                    seed * (maxwellian(0.5, &[0.0, u], vth, v)
                        + maxwellian(0.5, &[0.0, -u], vth, v))
                },
            ),
        )
        .species(
            SpeciesSpec::new(
                "ion",
                1.0,
                mass_ratio,
                &[-1.2, -1.2],
                &[1.2, 1.2],
                &[nv, nv],
            )
            .initial(move |_x, v| maxwellian(1.0, &[0.0, 0.0], 0.15, v)),
        )
        .field(FieldSpec::new(1.0).cleaning(1.0, 1.0).with_ic(move |x| {
            // Tiny magnetic seed so the filamentation branch has a finite
            // starting amplitude to grow from (and the growth factor below
            // is well-defined).
            let kx = 2.0 * std::f64::consts::PI / l;
            [
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                1e-6 * ((kx * x[0]).sin() + (kx * x[1]).cos()),
            ]
        }));
    if ranks > 0 {
        builder = builder.backend(RankParallel {
            ranks,
            threads: env_usize("WEIBEL_THREADS", 2),
        });
    }
    let mut app = builder.build()?;
    println!("backend: {}", app.backend_name());

    let outdir = std::path::Path::new("target/weibel");
    std::fs::create_dir_all(outdir)?;

    let q0 = app.conserved();
    println!(
        "t=0: kinetic {:.6}, field {:.3e}",
        q0.particle_energy, q0.field_energy
    );

    let sample = (t_end / 60.0).max(0.05);
    let mut history = EnergyHistory::every(sample);
    // Streaming field-energy series (one row per sample, flushed as the
    // run progresses).
    let mut fe_series = CsvSeries::create(
        outdir.join("field_energy.csv"),
        Trigger::EveryTime(sample),
        &["t", "field_energy"],
        |fr| vec![fr.time, fr.field_energy()],
    )?;
    // Slice panels at the start and the end of the run (the EveryTime
    // trigger fires at run start and at every multiple of its period —
    // here exactly t = 0 and t = t_end).
    let mut slices_y_vy = SliceSeries::new(
        outdir,
        "f_y_vy",
        0,
        1,
        3,
        &[l / 2.0, 0.0, 0.0, 0.0],
        Trigger::EveryTime(t_end),
    )
    .labels("y", "vy");
    let mut slices_vx_vy = SliceSeries::new(
        outdir,
        "f_vx_vy",
        0,
        2,
        3,
        &[l / 2.0, l / 2.0, 0.0, 0.0],
        Trigger::EveryTime(t_end),
    )
    .labels("vx", "vy");
    // Nonlinear-saturation detector: just past the field-energy peak —
    // the middle panel of Fig. 5.
    let mut peak_field: f64 = 0.0;
    let mut saved_peak = false;
    let q0_field = q0.field_energy;
    {
        let mut saturation = observe(Trigger::EveryTime(sample), |fr| {
            let fe = fr.field_energy();
            if fe > peak_field {
                peak_field = fe;
            } else if !saved_peak && fe < 0.95 * peak_field && peak_field > 2.0 * q0_field {
                let s1 = slice_2d(
                    fr.system,
                    &fr.state.species_f[0],
                    1,
                    3,
                    &[l / 2.0, 0.0, 0.0, 0.0],
                );
                write_grid_csv(
                    outdir.join("f_y_vy_saturation.csv"),
                    "y",
                    "vy",
                    &s1.xs,
                    &s1.ys,
                    &s1.values,
                )?;
                let s2 = slice_2d(
                    fr.system,
                    &fr.state.species_f[0],
                    2,
                    3,
                    &[l / 2.0, l / 2.0, 0.0, 0.0],
                );
                write_grid_csv(
                    outdir.join("f_vx_vy_saturation.csv"),
                    "vx",
                    "vy",
                    &s2.xs,
                    &s2.ys,
                    &s2.values,
                )?;
                saved_peak = true;
            }
            Ok(())
        })
        .named("saturation-detector");

        app.run(
            t_end,
            &mut [
                &mut history,
                &mut fe_series,
                &mut slices_y_vy,
                &mut slices_vx_vy,
                &mut saturation,
            ],
        )?;
    }
    if !saved_peak {
        // No clear saturation inside the horizon: stamp the final state
        // into both panels.
        let s1 = slice_2d(
            app.system(),
            &app.state().species_f[0],
            1,
            3,
            &[l / 2.0, 0.0, 0.0, 0.0],
        );
        write_grid_csv(
            outdir.join("f_y_vy_saturation.csv"),
            "y",
            "vy",
            &s1.xs,
            &s1.ys,
            &s1.values,
        )?;
        let s2 = slice_2d(
            app.system(),
            &app.state().species_f[0],
            2,
            3,
            &[l / 2.0, l / 2.0, 0.0, 0.0],
        );
        write_grid_csv(
            outdir.join("f_vx_vy_saturation.csv"),
            "vx",
            "vy",
            &s2.xs,
            &s2.ys,
            &s2.values,
        )?;
    }
    fe_series.finish()?;
    history.write_csv(outdir.join("weibel_history.csv"))?;

    let q1 = app.conserved();
    println!(
        "t={:.1} ({} steps): kinetic {:.6}, field {:.3e}",
        app.time(),
        app.steps_taken(),
        q1.particle_energy,
        q1.field_energy
    );
    println!(
        "  field-energy growth factor : {:.2e}",
        q1.field_energy / q0.field_energy.max(1e-300)
    );
    println!(
        "  mass drift                 : {:.3e}",
        history.mass_drift()
    );
    println!(
        "  total-energy drift         : {:.3e}",
        history.energy_drift()
    );
    println!("  frames in target/weibel/");

    assert!(history.mass_drift() < 1e-9, "mass must be conserved");
    if t_end >= 10.0 {
        assert!(
            q1.field_energy > q0.field_energy,
            "beam free energy must drive field growth"
        );
    } else {
        println!("  (shrunk run: skipping the field-growth assertion)");
    }
    vlasov_dg::util::emit_telemetry(&app, "weibel_2x2v")?;
    println!("weibel_2x2v OK");
    Ok(())
}
