//! Counter-streaming beams in 2X2V — the paper's Fig. 5 simulation.
//!
//! An electron–proton plasma whose electrons form two counter-streaming
//! beams (±u along y) is unstable to the zoo of two-stream, filamentation,
//! and hybrid oblique modes (§V; Skoutnev et al. 2019). The run converts
//! beam kinetic energy → electromagnetic energy → thermal spread, and the
//! phase-space slices (`y–v_y`, `v_x–v_y`) show the structure a continuum
//! method resolves noise-free.
//!
//! Defaults are container-sized; scale with environment variables for the
//! full paper-like run:
//!
//! ```text
//! WEIBEL_NX=16 WEIBEL_NV=16 WEIBEL_TEND=60 cargo run --release --example weibel_2x2v
//! ```
//!
//! Writes `weibel_history.csv` and slice CSVs into `target/weibel/`.

use vlasov_dg::core::species::maxwellian;
use vlasov_dg::diag::{csv::write_grid_csv, slices::slice_2d, EnergyHistory};
use vlasov_dg::prelude::*;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), String> {
    let nx = env_usize("WEIBEL_NX", 8);
    let nv = env_usize("WEIBEL_NV", 8);
    let t_end = env_f64("WEIBEL_TEND", 20.0);
    let u = 0.3; // beam drift (c = 1)
    let vth = 0.1;
    let mass_ratio = 1836.0;
    // Box sized to a few unstable wavelengths of the filamentation branch.
    let l = 2.0 * std::f64::consts::PI / 0.4;

    let mut app = AppBuilder::new()
        .conf_grid(&[0.0, 0.0], &[l, l], &[nx, nx])
        .poly_order(2)
        .basis(BasisKind::Serendipity)
        .cfl(0.8)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-1.2, -1.2], &[1.2, 1.2], &[nv, nv]).initial(
                move |x, v| {
                    // Counter-streaming beams along v_y, seeded with small
                    // multi-mode spatial noise (deterministic phases).
                    let kx = 2.0 * std::f64::consts::PI / l;
                    let seed = 1.0
                        + 1e-3
                            * ((kx * x[0]).cos() + (kx * x[1]).cos() + (kx * (x[0] + x[1])).sin());
                    seed * (maxwellian(0.5, &[0.0, u], vth, v)
                        + maxwellian(0.5, &[0.0, -u], vth, v))
                },
            ),
        )
        .species(
            SpeciesSpec::new(
                "ion",
                1.0,
                mass_ratio,
                &[-1.2, -1.2],
                &[1.2, 1.2],
                &[nv, nv],
            )
            .initial(move |_x, v| maxwellian(1.0, &[0.0, 0.0], 0.15, v)),
        )
        .field(FieldSpec::new(1.0).cleaning(1.0, 1.0).with_ic(move |x| {
            // Tiny magnetic seed so the filamentation branch has a finite
            // starting amplitude to grow from (and the growth factor below
            // is well-defined).
            let kx = 2.0 * std::f64::consts::PI / l;
            [
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                1e-6 * ((kx * x[0]).sin() + (kx * x[1]).cos()),
            ]
        }))
        .build()?;

    let outdir = std::path::Path::new("target/weibel");
    std::fs::create_dir_all(outdir).map_err(|e| e.to_string())?;

    let mut history = EnergyHistory::new();
    history.record(&app.system, &app.state, app.time());
    let save_slices = |app: &App, tag: &str| -> Result<(), String> {
        // y–v_y at x = L/2, v_x = 0 (axes: x0, x1, vx, vy).
        let s1 = slice_2d(
            &app.system,
            &app.state.species_f[0],
            1,
            3,
            &[l / 2.0, 0.0, 0.0, 0.0],
        );
        write_grid_csv(
            outdir.join(format!("f_y_vy_{tag}.csv")),
            "y",
            "vy",
            &s1.xs,
            &s1.ys,
            &s1.values,
        )
        .map_err(|e| e.to_string())?;
        // v_x–v_y at the box center.
        let s2 = slice_2d(
            &app.system,
            &app.state.species_f[0],
            2,
            3,
            &[l / 2.0, l / 2.0, 0.0, 0.0],
        );
        write_grid_csv(
            outdir.join(format!("f_vx_vy_{tag}.csv")),
            "vx",
            "vy",
            &s2.xs,
            &s2.ys,
            &s2.values,
        )
        .map_err(|e| e.to_string())
    };

    save_slices(&app, "initial")?;
    let q0 = app.conserved();
    println!(
        "t=0: kinetic {:.6}, field {:.3e}",
        q0.particle_energy, q0.field_energy
    );

    let mut peak_field: f64 = 0.0;
    let mut saved_peak = false;
    let sample = (t_end / 60.0).max(0.05);
    while app.time() < t_end {
        app.advance_by(sample)?;
        history.record(&app.system, &app.state, app.time());
        let fe = app.field_energy();
        if fe > peak_field {
            peak_field = fe;
        } else if !saved_peak && fe < 0.95 * peak_field && peak_field > 2.0 * q0.field_energy {
            // Just past nonlinear saturation — the middle panel of Fig. 5.
            save_slices(&app, "saturation")?;
            saved_peak = true;
        }
    }
    if !saved_peak {
        save_slices(&app, "saturation")?;
    }
    save_slices(&app, "final")?;
    history
        .write_csv(outdir.join("weibel_history.csv"))
        .map_err(|e| e.to_string())?;

    let q1 = app.conserved();
    println!(
        "t={:.1} ({} steps): kinetic {:.6}, field {:.3e}",
        app.time(),
        app.steps_taken(),
        q1.particle_energy,
        q1.field_energy
    );
    println!(
        "  field-energy growth factor : {:.2e}",
        q1.field_energy / q0.field_energy.max(1e-300)
    );
    println!(
        "  mass drift                 : {:.3e}",
        history.mass_drift()
    );
    println!(
        "  total-energy drift         : {:.3e}",
        history.energy_drift()
    );
    println!("  frames in target/weibel/");

    assert!(history.mass_drift() < 1e-9, "mass must be conserved");
    assert!(
        q1.field_energy > q0.field_energy,
        "beam free energy must drive field growth"
    );
    println!("weibel_2x2v OK");
    Ok(())
}
