//! Mini weak/strong scaling demo (the Fig. 3 harness at example scale).
//!
//! Runs the paper's 3X3V p=1 two-species problem family at container-sized
//! grids over 1, 2 and 4 simulated ranks and prints the per-step timings
//! and halo volumes. On a single-CPU container the point is the
//! decomposition *machinery* (bit-identical to serial — see the
//! `parallel_equiv` test); on a multicore host the same binary produces
//! real speedups.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use vlasov_dg::parallel::scaling::{strong_scaling_series, weak_scaling_series};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host threads: {threads}");

    println!("\nweak scaling (3X3V p=1, per-rank conf block 2x4x4, vel 4^3):");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "ranks", "phase cells", "s/step", "halo bytes"
    );
    let weak = weak_scaling_series(&[2, 4, 4], &[4, 4, 4], &[1, 2, 4], threads, 2);
    let base = weak[0].seconds_per_step;
    for p in &weak {
        println!(
            "{:>6} {:>12} {:>14.4e} {:>14}  (norm {:.2})",
            p.ranks,
            p.phase_cells,
            p.seconds_per_step,
            p.halo_bytes,
            p.seconds_per_step / base
        );
    }

    println!("\nstrong scaling (fixed 4x4x4 conf, 4^3 vel):");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "ranks", "phase cells", "s/step", "halo bytes"
    );
    let strong = strong_scaling_series(&[4, 4, 4], &[4, 4, 4], &[1, 2, 4], threads, 2);
    let base = strong[0].seconds_per_step;
    for p in &strong {
        println!(
            "{:>6} {:>12} {:>14.4e} {:>14}  (speedup {:.2})",
            p.ranks,
            p.phase_cells,
            p.seconds_per_step,
            p.halo_bytes,
            base / p.seconds_per_step
        );
    }
    println!("\nparallel_scaling OK");
}
