//! Mini weak/strong scaling demo (the Fig. 3 harness at example scale).
//!
//! First drives the *same* App declaration through both execution
//! backends — `Serial` and `RankParallel` — via the public builder, and
//! checks the trajectories match bit-for-bit (backend choice is pure
//! execution policy). Then runs the paper's 3X3V p=1 two-species problem
//! family at container-sized grids over 1, 2 and 4 simulated ranks and
//! prints the per-step timings and halo volumes. On a single-CPU
//! container the point is the decomposition *machinery*; on a multicore
//! host the same binary produces real speedups.
//!
//! ```text
//! PS_RANKS=4 cargo run --release --example parallel_scaling
//! ```

use std::time::Instant;
use vlasov_dg::core::species::maxwellian;
use vlasov_dg::parallel::scaling::{strong_scaling_series, weak_scaling_series};
use vlasov_dg::prelude::*;
use vlasov_dg::util::env_usize;

/// One small 1X2V declaration, parameterized only by its backend.
fn build_demo(backend: Option<RankParallel>) -> Result<App, Error> {
    let k = 0.5;
    let mut b = AppBuilder::new()
        .conf_grid(&[0.0], &[2.0 * std::f64::consts::PI / k], &[12])
        .poly_order(1)
        .basis(BasisKind::Serendipity)
        .species(
            SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0, -6.0], &[6.0, 6.0], &[6, 6]).initial(
                move |x, v| maxwellian(1.0 + 0.08 * (k * x[0]).cos(), &[0.3, -0.2], 1.0, v),
            ),
        )
        .field(FieldSpec::new(2.0).with_poisson_init().cleaning(1.0, 1.0));
    if let Some(factory) = backend {
        b = b.backend(factory);
    }
    b.build()
}

fn main() -> Result<(), Error> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ranks = env_usize("PS_RANKS", 4);
    println!("host threads: {threads}");

    // --- backend demo: one declaration, two engines, identical bits ---
    let t_demo = 0.05;
    let mut serial = build_demo(None)?;
    let t0 = Instant::now();
    serial.run(t_demo, &mut [])?;
    let serial_s = t0.elapsed().as_secs_f64();

    let mut par = build_demo(Some(RankParallel { ranks, threads }))?;
    let t0 = Instant::now();
    par.run(t_demo, &mut [])?;
    let par_s = t0.elapsed().as_secs_f64();

    let identical = serial.state().species_f[0].as_slice() == par.state().species_f[0].as_slice()
        && serial.state().em.as_slice() == par.state().em.as_slice();
    println!(
        "\nbackend demo (t = {t_demo}, {} steps): serial {serial_s:.3}s vs {} x{ranks} {par_s:.3}s, bit-identical: {identical}",
        serial.steps_taken(),
        par.backend_name(),
    );
    assert!(identical, "backends must agree bit-for-bit");

    // --- Fig. 3 style series through the hand-wired harness ---
    println!("\nweak scaling (3X3V p=1, per-rank conf block 2x4x4, vel 4^3):");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "ranks", "phase cells", "s/step", "halo bytes"
    );
    let weak = weak_scaling_series(&[2, 4, 4], &[4, 4, 4], &[1, 2, 4], threads, 2);
    let base = weak[0].seconds_per_step;
    for p in &weak {
        println!(
            "{:>6} {:>12} {:>14.4e} {:>14}  (norm {:.2})",
            p.ranks,
            p.phase_cells,
            p.seconds_per_step,
            p.halo_bytes,
            p.seconds_per_step / base
        );
    }

    println!("\nstrong scaling (fixed 4x4x4 conf, 4^3 vel):");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "ranks", "phase cells", "s/step", "halo bytes"
    );
    let strong = strong_scaling_series(&[4, 4, 4], &[4, 4, 4], &[1, 2, 4], threads, 2);
    let base = strong[0].seconds_per_step;
    for p in &strong {
        println!(
            "{:>6} {:>12} {:>14.4e} {:>14}  (speedup {:.2})",
            p.ranks,
            p.phase_cells,
            p.seconds_per_step,
            p.halo_bytes,
            base / p.seconds_per_step
        );
    }
    println!("\nparallel_scaling OK");
    Ok(())
}
