//! # vlasov-dg
//!
//! A Rust reproduction of **Hakim & Juno, "Alias-free, matrix-free, and
//! quadrature-free discontinuous Galerkin algorithms for (plasma) kinetic
//! equations"** (SC 2020) — a continuum kinetic Vlasov–Maxwell solver in up
//! to 3X3V phase space built on modal, orthonormal DG bases whose update
//! kernels are assembled from analytically evaluated integrals.
//!
//! This facade crate re-exports the workspace's public API. See `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the reproduced
//! tables/figures.
//!
//! ## Quick start
//!
//! ```
//! use vlasov_dg::prelude::*;
//!
//! // 1X1V electrostatic-limit Vlasov–Maxwell: weak Landau damping setup.
//! let mut app = AppBuilder::new()
//!     .conf_grid(&[-2.0 * std::f64::consts::PI], &[2.0 * std::f64::consts::PI], &[8])
//!     .poly_order(2)
//!     .basis(BasisKind::Serendipity)
//!     .species(
//!         SpeciesSpec::new("elc", -1.0, 1.0, &[-6.0], &[6.0], &[8]).initial(|x, v| {
//!             let vth: f64 = 1.0;
//!             let k = 0.5;
//!             (1.0 + 0.01 * (k * x[0]).cos())
//!                 * (-v[0] * v[0] / (2.0 * vth * vth)).exp()
//!                 / (2.0 * std::f64::consts::PI * vth * vth).sqrt()
//!         }),
//!     )
//!     .field(FieldSpec::new(1.0).with_poisson_init())
//!     .build()
//!     .unwrap();
//!
//! // The run driver owns the loop; observers sample on their triggers.
//! let mut history = EnergyHistory::every(0.05);
//! app.run(0.1, &mut [&mut history]).unwrap();
//! assert!(app.time() >= 0.1);
//! assert!(history.mass_drift() < 1e-12);
//! // Swap `.backend(RankParallel { ranks: 4, threads: 2 })` into the
//! // builder and the same declaration runs rank-parallel, bit-identically.
//! ```

pub use dg_basis as basis;
pub use dg_core as core;
pub use dg_diag as diag;
pub use dg_ensemble as ensemble;
pub use dg_grid as grid;
pub use dg_kernels as kernels;
pub use dg_maxwell as maxwell;
pub use dg_nodal as nodal;
pub use dg_parallel as parallel;
pub use dg_poly as poly;
pub use dg_telemetry as telemetry;

/// Shared runtime-configuration helpers (env-override parsers used by the
/// examples, the bench harness, and the CI smoke jobs).
pub mod util {
    pub use dg_diag::util::{env_f64, env_usize};

    use dg_core::app::App;
    use dg_core::error::Error;

    /// End-of-run telemetry hand-off shared by the examples: when the app
    /// was built with collection on (`DG_TELEMETRY=1`), print the
    /// per-phase summary table and write the machine-readable report to
    /// `telemetry.json` in the working directory (override the path with
    /// `DG_TELEMETRY_PATH`). A no-op when telemetry is off, so examples
    /// call it unconditionally after `App::run`.
    pub fn emit_telemetry(app: &App, name: &str) -> Result<(), Error> {
        if !app.telemetry_enabled() {
            return Ok(());
        }
        let report = app.telemetry_report(name).expect("telemetry is enabled");
        print!("{}", report.summary_table());
        let path =
            std::env::var("DG_TELEMETRY_PATH").unwrap_or_else(|_| String::from("telemetry.json"));
        app.write_telemetry(std::path::Path::new(&path), name)?;
        println!("wrote {path}");
        Ok(())
    }
}

/// One-stop imports for applications.
pub mod prelude {
    pub use dg_basis::{Basis, BasisKind};
    pub use dg_core::app::{App, AppBuilder, FieldSpec, SpeciesSpec};
    pub use dg_core::backend::{Backend, BackendFactory, Serial};
    pub use dg_core::error::Error;
    pub use dg_core::observer::{observe, Frame, Observer, Trigger};
    pub use dg_core::system::{FluxKind, SystemState, VlasovMaxwell, WallChannels};
    pub use dg_diag::csv::CsvSeries;
    pub use dg_diag::history::EnergyHistory;
    pub use dg_diag::metrics::MetricsObserver;
    pub use dg_diag::slices::SliceSeries;
    pub use dg_diag::snapshot::Checkpoint;
    pub use dg_diag::walls::WallFluxLedger;
    pub use dg_ensemble::{
        CancelToken, Ensemble, EnsembleConfig, EnsembleReport, JobOutputs, JobParams, JobRecord,
        JobSpec, JobStatus, RetryPolicy, SweepSpec,
    };
    pub use dg_grid::boundary::{Bc, DimBc};
    pub use dg_grid::grid::CartGrid;
    pub use dg_kernels::{DispatchPath, KernelDispatch};
    pub use dg_parallel::RankParallel;
    pub use dg_telemetry::{Collector, Counter, Phase, Registry, RunReport, Snapshot};
}
